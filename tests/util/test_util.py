"""Utility helpers: timing and table formatting."""

import time

import pytest

from repro.util.tables import format_table
from repro.util.timing import Timer, best_of, clock_resolution, time_callable


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.elapsed >= 0
        assert t.mean == t.elapsed / 2

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.count == 0 and t.elapsed == 0.0

    def test_mean_of_empty_is_zero(self):
        assert Timer().mean == 0.0

    def test_raised_body_does_not_accumulate(self):
        # Regression: __exit__ used to record the aborted interval,
        # poisoning elapsed/mean with partial work.
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("boom")
        assert t.count == 0
        assert t.elapsed == 0.0
        assert t.aborted == 1

    def test_clean_use_after_abort_records_normally(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t:
                raise ValueError
        with t:
            pass
        assert t.count == 1
        assert t.aborted == 1

    def test_reset_clears_aborted(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t:
                raise ValueError
        t.reset()
        assert t.aborted == 0


class TestClockResolution:
    def test_positive_and_finite(self):
        r = clock_resolution()
        assert 0 < r < 1.0

    def test_cached(self):
        assert clock_resolution() == clock_resolution()


class TestTiming:
    def test_time_callable_counts(self):
        calls = []
        times = time_callable(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(times) == 3
        assert len(calls) == 5

    def test_best_of_is_min(self):
        ts = iter([0.0, 0.3, 0.0, 0.1, 0.0, 0.2])

        def fn():
            time.sleep(0.001)

        assert best_of(fn, warmup=0, repeats=3) > 0


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789e-9], [123456.789], [0.0]])
        assert "e-09" in out
        assert "e+05" in out or "123456" in out
        assert "0" in out
