"""Platform specifications (paper SectionV-A testbeds + the host).

The paper evaluates on an Intel Core i7-4765T (STREAM triad ~22.2GB/s)
and an NVIDIA K20c (Empirical Roofline Toolkit ~127GB/s).  Neither is
available here, so both are carried as :class:`MachineSpec` records that
feed the analytic execution model (:mod:`repro.machine.model`); the
host machine gets a spec of its own whose bandwidth is *measured* with
the modified STREAM benchmark (Fig.6).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "I7_4765T", "K20C", "host_spec", "PAPER_PLATFORMS"]


@dataclass(frozen=True)
class MachineSpec:
    """What the Roofline/execution model needs to know about a machine."""

    name: str
    kind: str  # "cpu" | "gpu"
    #: sustained read-dominated memory bandwidth, bytes/second
    stream_bw: float
    #: last-level cache capacity, bytes (working sets below this run at
    #: cache bandwidth, explaining the paper's 32^3 above-roofline point)
    cache_bytes: float
    #: effective bandwidth for cache-resident working sets, bytes/second
    cache_bw: float
    #: fixed cost per kernel launch, seconds (GPUs: host->device launch
    #: latency; CPUs: parallel-region/task overhead)
    launch_overhead: float

    def effective_bw(self, working_set_bytes: float) -> float:
        return self.cache_bw if working_set_bytes <= self.cache_bytes else self.stream_bw


#: The paper's CPU testbed (SectionV-A): 4-core 2.0GHz Haswell,
#: 22.2GB/s STREAM triad, 8MiB LLC.
I7_4765T = MachineSpec(
    name="Intel Core i7-4765T",
    kind="cpu",
    stream_bw=22.2e9,
    cache_bytes=8 * 2**20,
    cache_bw=80e9,
    launch_overhead=2e-6,
)

#: The paper's GPU testbed: Kepler K20c, ~127GB/s per the Empirical
#: Roofline Toolkit, 1.25MiB L2.  The per-kernel overhead is an
#: *effective* figure (launch + per-operation synchronization + coarse
#: level host coordination) calibrated so the modeled full-GMG
#: throughput reproduces Fig.9's modest GPU-over-CPU margin; raw launch
#: latency alone (~8µs) would overstate the GPU by several times.
K20C = MachineSpec(
    name="NVIDIA K20c",
    kind="gpu",
    stream_bw=127e9,
    cache_bytes=1.25 * 2**20,
    cache_bw=180e9,
    launch_overhead=6e-5,
)

PAPER_PLATFORMS = {"cpu": I7_4765T, "gpu": K20C}

_HOST_CACHE: MachineSpec | None = None


def host_spec(measure: bool = True) -> MachineSpec:
    """Spec for the machine we are running on.

    Bandwidth comes from the STREAM-dot measurement when ``measure``;
    otherwise a conservative placeholder is returned.  Cached after the
    first measurement.
    """
    global _HOST_CACHE
    if _HOST_CACHE is not None:
        return _HOST_CACHE
    bw = 10e9
    if measure:
        from .stream import stream_dot_bandwidth

        bw = stream_dot_bandwidth(n=2**22, repeats=3, flavor="c")
    _HOST_CACHE = MachineSpec(
        name="host",
        kind="cpu",
        stream_bw=bw,
        cache_bytes=16 * 2**20,
        cache_bw=3.0 * bw,
        launch_overhead=2e-6,
    )
    return _HOST_CACHE
