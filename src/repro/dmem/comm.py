"""SimComm: an in-process, MPI-shaped message-passing fabric.

Mirrors the mpi4py calling convention for the subset a halo-exchange
backend needs — ``send``/``recv`` of numpy arrays addressed by
``(source, dest, tag)``, and a barrier.  Because every rank runs in one
process under a lock-step driver, a ``recv`` with no matching message
is a *provable* deadlock and raises immediately instead of hanging;
tests use that to assert exchange protocols are complete.

Traffic accounting (`bytes_sent`, `messages`) stands in for the wire:
the distributed benchmarks report communication volume per sweep,
which is platform-independent truth even on a simulated fabric.

Fault injection (:mod:`repro.resilience.faults`) models an unreliable
wire: ``comm.send.drop`` loses a message on the send side,
``comm.recv.drop`` discards it at delivery, and
``comm.payload.corrupt`` bit-flips the in-flight copy — each
deterministic and site-addressed, so exchange protocols can be tested
against the failures real fabrics produce.  ``barrier(strict=True)``
(or ``world(..., strict_barriers=True)``) turns a barrier into a
protocol audit: any message still undelivered raises :class:`CommError`
instead of being silently counted.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..resilience.faults import fault_point

__all__ = ["CommError", "SimComm"]


class CommError(RuntimeError):
    """Protocol violation: missing message, bad rank, type mismatch."""


@dataclass
class _Stats:
    messages: int = 0
    bytes_sent: int = 0
    barriers: int = 0
    dropped: int = 0  # messages lost to injected send/recv drops
    corrupted: int = 0  # payloads bit-flipped by injected corruption


class _Fabric:
    """Shared mailbox store for one communicator."""

    def __init__(self, size: int, strict_barriers: bool = False) -> None:
        self.size = size
        self.strict_barriers = strict_barriers
        self.boxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.stats = _Stats()


class SimComm:
    """One rank's endpoint on a simulated communicator.

    Create the world with :meth:`world`; each element plays the role of
    ``MPI.COMM_WORLD`` on its rank.
    """

    def __init__(self, fabric: _Fabric, rank: int) -> None:
        self._fabric = fabric
        self._rank = rank

    # -- construction --------------------------------------------------------

    @staticmethod
    def world(size: int, *, strict_barriers: bool = False) -> list["SimComm"]:
        """Create all rank endpoints; ``strict_barriers=True`` makes
        every :meth:`barrier` audit for undelivered messages."""
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        fabric = _Fabric(size, strict_barriers=strict_barriers)
        return [SimComm(fabric, r) for r in range(size)]

    # -- mpi4py-flavoured surface ----------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._fabric.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._fabric.size

    def send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        """Copy-out send (the wire owns its bytes, as with real MPI)."""
        self._check_rank(dest)
        if dest == self._rank:
            raise CommError("self-send is always a protocol bug here")
        arr = np.array(data, copy=True)
        if fault_point("comm.send.drop"):
            self._fabric.stats.dropped += 1
            telemetry.count("dmem.dropped")
            return
        if fault_point("comm.payload.corrupt") and arr.nbytes:
            # deterministic byte-flip on the wire copy: the high byte of
            # the middle element (for floats, the sign/exponent byte —
            # a corruption large enough to matter, not a rounding blip)
            mid = (arr.size // 2) * arr.itemsize + (arr.itemsize - 1)
            arr.view(np.uint8).flat[mid] ^= 0xFF
            self._fabric.stats.corrupted += 1
            telemetry.count("dmem.corrupted")
        self._fabric.boxes[(self._rank, dest, tag)].append(arr)
        self._fabric.stats.messages += 1
        self._fabric.stats.bytes_sent += arr.nbytes
        telemetry.count("dmem.messages")
        telemetry.count("dmem.bytes_sent", arr.nbytes)

    def recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Receive the next matching message; raises on guaranteed deadlock."""
        self._check_rank(source)
        box = self._fabric.boxes.get((source, self._rank, tag))
        if box and fault_point("comm.recv.drop"):
            box.popleft()  # lost at delivery; the CommError below is
            self._fabric.stats.dropped += 1  # how the loss surfaces
            telemetry.count("dmem.dropped")
        if not box:
            raise CommError(
                f"rank {self._rank} recv(source={source}, tag={tag}): "
                "no matching message — in a real run this rank would "
                "deadlock"
            )
        return box.popleft()

    def sendrecv(
        self,
        senddata: np.ndarray,
        dest: int,
        recvsource: int,
        tag: int = 0,
    ) -> np.ndarray:
        """Paired exchange (the halo-swap primitive).

        Under the lock-step driver both sides' sends are enqueued before
        any recv executes, so this decomposes safely.
        """
        self.send(senddata, dest, tag)
        return self.recv(recvsource, tag)

    def barrier(self, strict: bool | None = None) -> None:
        """Synchronization point (a counter on the lock-step fabric).

        With ``strict=True`` (or a ``strict_barriers`` world), messages
        still undelivered at the barrier are a protocol bug — an
        exchange enqueued sends that nobody received — and raise
        :class:`CommError` naming the offending mailboxes.
        """
        self._fabric.stats.barriers += 1
        telemetry.count("dmem.barriers")
        telemetry.tracing.instant(
            "barrier", cat="dmem", lane=f"rank {self._rank}",
        )
        if strict is None:
            strict = self._fabric.strict_barriers
        if strict:
            pending = {
                key: len(box)
                for key, box in self._fabric.boxes.items()
                if box
            }
            if pending:
                detail = ", ".join(
                    f"src={s}->dest={d} tag={t}: {n} msg(s)"
                    for (s, d, t), n in sorted(pending.items())
                )
                raise CommError(
                    f"strict barrier: {sum(pending.values())} message(s) "
                    f"still pending ({detail}) — incomplete exchange "
                    "protocol"
                )

    # -- accounting -----------------------------------------------------------

    @property
    def stats(self) -> _Stats:
        return self._fabric.stats

    def pending_messages(self) -> int:
        return sum(len(b) for b in self._fabric.boxes.values())

    # -- internals -------------------------------------------------------------

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self._fabric.size):
            raise CommError(
                f"rank {r} out of range for size-{self._fabric.size} world"
            )
