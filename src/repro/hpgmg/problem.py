"""Problem setup: manufactured solutions and right-hand sides.

For solver verification we use the *discrete* manufactured-solution
trick: pick a target field ``u*`` satisfying the homogeneous Dirichlet
boundary, then compute ``rhs = A_h u*`` with the same DSL-built discrete
operator the solver uses.  The exact discrete solution is then ``u*``
itself, so multigrid convergence can be measured against a known answer
with no discretization-error confound.
"""

from __future__ import annotations

import numpy as np

from ..core.stencil import StencilGroup
from .level import Level
from .operators import (
    boundary_stencils,
    cc_laplacian,
    vc_laplacian,
    residual_stencil,
)

__all__ = ["smooth_u_exact", "setup_problem", "operator_expr", "apply_operator"]


def smooth_u_exact(level: Level) -> np.ndarray:
    """``u*(x) = prod_d sin(pi x_d)`` at cell centers — zero on the boundary
    faces (up to discretization), smooth, and nontrivial in every dim."""
    pts = level.cell_centers()
    u = np.ones(level.shape, dtype=level.dtype)
    for d in range(level.ndim):
        u *= np.sin(np.pi * pts[..., d])
    out = np.zeros_like(u)
    out[level.interior] = u[level.interior]
    return out


def operator_expr(level: Level, grid: str = "x"):
    """The level's discrete operator ``A`` as a Snowflake expression."""
    if level.coefficients == "constant":
        return cc_laplacian(level.ndim, level.h, grid=grid)
    return vc_laplacian(level.ndim, level.h, grid=grid)


def apply_operator(
    level: Level,
    u: np.ndarray,
    backend: str = "numpy",
    out: str = "res",
) -> np.ndarray:
    """Compute ``A_h u`` (with boundary ghost refresh) into grid ``out``.

    Returns the output array (owned by the level).  Uses the DSL end to
    end: BC stencils then ``0 - (-(A x))`` via the residual stencil with
    a zero rhs... more directly, we build ``res = rhs - A x`` with
    ``rhs = 0`` and negate.
    """
    ndim = level.ndim
    Ax = operator_expr(level)
    group = StencilGroup(
        boundary_stencils(ndim, "x") + [residual_stencil(ndim, Ax, out=out)],
        name="apply_A",
    )
    saved_x = level.grids["x"].copy()
    saved_rhs = level.grids["rhs"].copy()
    level.grids["x"][...] = u
    level.grids["rhs"].fill(0.0)
    kernel = group.compile(backend=backend)
    kernel(**{g: level.grids[g] for g in group.grids()})
    level.grids["x"][...] = saved_x
    level.grids["rhs"][...] = saved_rhs
    result = level.grids[out]
    np.negative(result, out=result)  # res = 0 - A u  ->  A u
    return result


def setup_problem(
    n: int,
    ndim: int = 3,
    *,
    coefficients: str = "constant",
    backend: str = "numpy",
    dtype=np.float64,
) -> tuple[Level, np.ndarray]:
    """Build the finest level with ``rhs = A_h u*`` and ``x = 0``.

    Returns ``(level, u_exact)``.
    """
    level = Level(n, ndim, coefficients=coefficients, dtype=dtype)
    u = smooth_u_exact(level)
    au = apply_operator(level, u, backend=backend)
    level.grids["rhs"][...] = au
    level.grids["res"].fill(0.0)
    level.zero("x", "tmp")
    return level, u
