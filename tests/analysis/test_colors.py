"""Coloring analysis: partitions, disjointness, k-colorings."""

import numpy as np
import pytest

from repro.analysis.colors import (
    checkerboard,
    domains_disjoint,
    is_partition,
    k_coloring,
    union_self_disjoint,
)
from repro.core.domains import DomainUnion, RectDomain


class TestDisjoint:
    def test_disjoint_boxes(self):
        a = RectDomain((0, 0), (4, 4))
        b = RectDomain((4, 4), (8, 8))
        assert domains_disjoint(a, b, (10, 10))

    def test_overlapping_boxes(self):
        a = RectDomain((0, 0), (5, 5))
        b = RectDomain((4, 4), (8, 8))
        assert not domains_disjoint(a, b, (10, 10))

    def test_interleaved_lattices(self):
        a = RectDomain((0,), (-1,), (2,))
        b = RectDomain((1,), (-1,), (2,))
        assert domains_disjoint(a, b, (20,))

    def test_union_self_disjoint(self):
        ok = RectDomain((1,), (5,)) + RectDomain((5,), (9,))
        bad = RectDomain((1,), (6,)) + RectDomain((5,), (9,))
        assert union_self_disjoint(ok, (10,))
        assert not union_self_disjoint(bad, (10,))


class TestPartition:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("size", [8, 9, 11])
    def test_checkerboard_partitions_interior(self, ndim, size):
        red, black = checkerboard(ndim)
        interior = RectDomain.interior(ndim)
        assert is_partition([red, black], interior, (size,) * ndim)

    def test_missing_color_fails(self):
        red, _ = checkerboard(2)
        interior = RectDomain.interior(2)
        assert not is_partition([red], interior, (8, 8))

    def test_overlapping_colors_fail(self):
        red, _ = checkerboard(2)
        interior = RectDomain.interior(2)
        assert not is_partition([red, red], interior, (8, 8))

    def test_color_outside_region_fails(self):
        interior = RectDomain((2, 2), (-2, -2))
        red, black = checkerboard(2)  # spills outside the shrunk region
        assert not is_partition([red, black], interior, (10, 10))

    def test_k_coloring_partitions(self):
        colors = k_coloring(2, 2)
        assert len(colors) == 4
        interior = RectDomain.interior(2)
        assert is_partition(colors, interior, (10, 10))

    def test_k3_coloring(self):
        colors = k_coloring(1, 3)
        assert len(colors) == 3
        interior = RectDomain.interior(1)
        assert is_partition(colors, interior, (11,))

    def test_counts_add_up(self):
        colors = k_coloring(2, 2)
        total = sum(c.npoints((9, 9)) for c in colors)
        assert total == 7 * 7
