"""The ``times``-aware :func:`repro.run` entry point."""

import numpy as np
import pytest

from repro import run
from tests.schedule.test_time_tile import (
    gsrb_case,
    jacobi_case,
    periodic_case,
)


class TestRun:
    def test_time_tile_lands_in_one_invocation(self):
        group, shapes, arrays = gsrb_case()
        tiled = {g: a.copy() for g, a in arrays.items()}
        assert run(group, tiled, times=4, backend="numpy") == 1
        ref = {g: a.copy() for g, a in arrays.items()}
        kernel = group.compile(
            backend="numpy", shapes=shapes, dtype=np.float64
        )
        for _ in range(4):
            kernel(**ref)
        for g in sorted(shapes):
            np.testing.assert_array_equal(tiled[g], ref[g])

    def test_refused_group_falls_back_to_k_calls(self):
        group, shapes = periodic_case()
        rng = np.random.default_rng(0)
        arrays = {g: rng.standard_normal(shapes[g]) for g in shapes}
        assert run(group, arrays, times=3, backend="numpy") == 3

    def test_strict_surfaces_the_refusal(self):
        group, shapes = periodic_case()
        rng = np.random.default_rng(0)
        arrays = {g: rng.standard_normal(shapes[g]) for g in shapes}
        with pytest.raises(ValueError, match="not legal"):
            run(group, arrays, times=3, backend="numpy", strict=True)

    def test_gpu_sim_falls_back(self):
        group, shapes, arrays = jacobi_case()
        work = {g: a.copy() for g, a in arrays.items()}
        assert run(group, work, times=2, backend="cuda-sim") == 2

    def test_times_one_is_a_plain_call(self):
        group, _, arrays = jacobi_case()
        work = {g: a.copy() for g, a in arrays.items()}
        assert run(group, work, times=1, backend="numpy") == 1

    def test_bad_times_rejected(self):
        group, _, arrays = jacobi_case()
        with pytest.raises(ValueError, match="times"):
            run(group, arrays, times=0, backend="numpy")

    def test_accepts_bare_stencil(self):
        group, _, arrays = jacobi_case()
        (stencil,) = tuple(group)
        work = {g: a.copy() for g, a in arrays.items()}
        assert run(stencil, work, times=2, backend="numpy") == 1
