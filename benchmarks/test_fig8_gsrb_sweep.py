"""Fig.8 — VC GSRB smoother time across the multigrid size ladder.

One benchmark per (size, implementation).  The paper's ladder is
32³…256³; the default here is 8³…`op_size`³ so the sweep finishes on a
laptop — raise ``SNOWFLAKE_BENCH_SIZE`` to extend it.  The Roofline
bound and cache-residency flag ride along in ``extra_info`` so the
"small sizes beat the DRAM roofline" crossover is visible in the report.
"""

import os

import pytest

from repro.figures.common import build_case, operator_work
from repro.figures.fig7 import _baseline_runner
from repro.machine.roofline import roofline_time
from repro.machine.specs import host_spec

_TOP = int(os.environ.get("SNOWFLAKE_BENCH_SIZE", 32))
SIZES = [n for n in (8, 16, 32, 64, 128, 256) if n <= max(_TOP, 16)]


def _attach(benchmark, n):
    spec = host_spec()
    work = operator_work("vc_gsrb", n)
    benchmark.extra_info["dram_roofline_s"] = roofline_time(
        spec, 64.0, work.points
    )
    benchmark.extra_info["cache_resident"] = bool(
        work.working_set <= spec.cache_bytes
    )


@pytest.mark.parametrize("n", SIZES)
def test_gsrb_snowflake_openmp(benchmark, n):
    case = build_case("vc_gsrb", n)
    run = case.compile("openmp")
    run()
    benchmark(run)
    _attach(benchmark, n)


@pytest.mark.parametrize("n", SIZES)
def test_gsrb_baseline(benchmark, n):
    case = build_case("vc_gsrb", n)
    run = _baseline_runner("vc_gsrb", case)
    run()
    benchmark(run)
    _attach(benchmark, n)


@pytest.mark.parametrize("n", SIZES)
def test_gsrb_snowflake_opencl_sim(benchmark, n):
    case = build_case("vc_gsrb", n)
    run = case.compile("opencl-sim")
    run()
    benchmark(run)
    _attach(benchmark, n)
