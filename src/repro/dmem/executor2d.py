"""2-D Cartesian rank decomposition (the multisocket/NUMA shape of
paper SectionVII: "one process per NUMA node").

Extends the 1-D slab executor to a ``P0 x P1`` rank grid over the two
leading dimensions.  Halo exchange is the classic two-phase sweep:
first dimension1 (columns, spanning the *full* local height including
dim-0 halos — after phase two runs, that ordering is what makes corner
ghosts correct for diagonal-reading stencils without explicit corner
messages), then dimension0 (rows spanning the full local width).

Reuses :class:`~repro.dmem.comm.SimComm` (one fabric, ranks numbered
row-major) and the exact lattice-restriction arithmetic of the 1-D
executor, applied per decomposed dimension — colored domains partition
correctly across both axes.

Halo traffic rides the same exactly-once
:class:`~repro.dmem.transport.ReliableComm` layer as the 1-D executor
(sequence numbers, per-envelope CRC, dedup/reorder/retransmit), so the
2-D executor has full halo-checksum guard parity: with the
``halo_checksum`` guard armed, in-flight corruption is reported per the
guard severity; with it off, the transport heals the wire silently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import telemetry
from ..core.domains import RectDomain, ResolvedRect
from ..core.stencil import Stencil, StencilGroup
from ..core.validate import check_group
from ..resilience.guards import Guards, halo_crc
from .comm import SimComm
from .decompose import BlockDecomposition
from .transport import ReliableComm

__all__ = ["DistributedKernel2D"]

_TAGS = {(0, -1): 201, (0, +1): 202, (1, -1): 203, (1, +1): 204}


def _restrict_dim(
    lows, strides, counts, dim: int, own_lo: int, own_hi: int, base: int
):
    """Restrict one dimension of a resolved box to [own_lo, own_hi) and
    translate by ``base``; returns (first, last, stride) or None."""
    lo, st, ct = lows[dim], strides[dim], counts[dim]
    if st == 0:
        if not (own_lo <= lo < own_hi):
            return None
        return (lo - base, lo - base, 0)
    k0 = max(0, (own_lo - lo + st - 1) // st)
    k1 = min(ct - 1, (own_hi - 1 - lo) // st)
    if k0 > k1:
        return None
    return (lo + st * k0 - base, lo + st * k1 - base, st)


class DistributedKernel2D:
    """SPMD executor over a ``p0 x p1`` rank grid (dims 0 and 1)."""

    def __init__(
        self,
        group: StencilGroup,
        global_shape: Sequence[int],
        grid: tuple[int, int],
        *,
        backend: str = "c",
        dtype=np.float64,
        guards: Guards | None = None,
        transport_retries: int = 4,
        **backend_options,
    ) -> None:
        if len(global_shape) < 2:
            raise ValueError("2-D decomposition needs at least 2 dims")
        self.group = group
        self.global_shape = tuple(int(x) for x in global_shape)
        self.p0, self.p1 = int(grid[0]), int(grid[1])
        self.dtype = np.dtype(dtype)
        self.backend = backend
        self.guards = guards if guards is not None else Guards.from_env()
        self.backend_options = dict(backend_options)

        self._validate_decomposable()
        shapes = {g: self.global_shape for g in group.grids()}
        check_group(group, shapes)

        # halo widths per decomposed dim, per stencil, per grid
        self.read_halos: list[dict[str, tuple[int, int]]] = []
        h0 = h1 = 0
        for st in group:
            per: dict[str, tuple[int, int]] = {}
            for read in st.flat.reads():
                w0, w1 = abs(read.offset[0]), abs(read.offset[1])
                if w0 or w1:
                    old = per.get(read.grid, (0, 0))
                    per[read.grid] = (max(old[0], w0), max(old[1], w1))
                    h0, h1 = max(h0, w0), max(h1, w1)
            self.read_halos.append(per)
        self.halo = (h0, h1)

        self.d0 = BlockDecomposition(self.global_shape[0], self.p0, h0)
        self.d1 = BlockDecomposition(self.global_shape[1], self.p1, h1)
        for s in self.d0.slabs:
            if s.own_hi - s.own_lo < h0:
                raise ValueError("dim-0 slabs thinner than the halo")
        for s in self.d1.slabs:
            if s.own_hi - s.own_lo < h1:
                raise ValueError("dim-1 slabs thinner than the halo")
        self.comms = SimComm.world(self.p0 * self.p1)
        self.transport = ReliableComm.attach(
            self.comms, guards=self.guards,
            max_retries=int(transport_retries),
        )

        # per-rank kernels
        self._kernels: list[list[tuple[Stencil, object] | None]] = []
        for r0 in range(self.p0):
            for r1 in range(self.p1):
                s0, s1 = self.d0.slabs[r0], self.d1.slabs[r1]
                local_shape = (
                    s0.rows, s1.rows, *self.global_shape[2:]
                )
                row: list[tuple[Stencil, object] | None] = []
                for st in group:
                    rects = [
                        r
                        for r in st.domain.resolve(self.global_shape)
                        if not r.is_empty()
                    ]
                    local_doms = []
                    for rect in rects:
                        a = _restrict_dim(
                            rect.lows, rect.strides, rect.counts, 0,
                            s0.own_lo, s0.own_hi, s0.base,
                        )
                        if a is None:
                            continue
                        b = _restrict_dim(
                            rect.lows, rect.strides, rect.counts, 1,
                            s1.own_lo, s1.own_hi, s1.base,
                        )
                        if b is None:
                            continue
                        starts = [a[0], b[0]]
                        ends = [a[1] + 1, b[1] + 1]
                        strides = [a[2], b[2]]
                        for d in range(2, rect.ndim):
                            dlo, dst, dct = (
                                rect.lows[d], rect.strides[d], rect.counts[d]
                            )
                            starts.append(dlo)
                            ends.append(dlo + dst * (dct - 1) + 1)
                            strides.append(dst)
                        local_doms.append(
                            RectDomain(tuple(starts), tuple(ends), tuple(strides))
                        )
                    if not local_doms:
                        row.append(None)
                        continue
                    dom = local_doms[0]
                    for extra in local_doms[1:]:
                        dom = dom + extra
                    local = Stencil(
                        st.body, st.output, dom,
                        output_map=st.output_map,
                        name=f"{st.name}@r{r0}_{r1}",
                    )
                    kernel = local.compile(
                        backend=self.backend,
                        shapes={g: local_shape for g in local.grids()},
                        dtype=self.dtype,
                        **self.backend_options,
                    )
                    row.append((local, kernel))
                self._kernels.append(row)

    # -- helpers -------------------------------------------------------------

    def _rank(self, r0: int, r1: int) -> int:
        return r0 * self.p1 + r1

    def _validate_decomposable(self) -> None:
        for st in self.group:
            if not st.output_map.is_identity():
                raise ValueError(
                    f"{st.name}: scaled output maps are node-local"
                )
            for read in st.flat.reads():
                if read.scale[0] != 1 or read.scale[1] != 1:
                    raise ValueError(
                        f"{st.name}: scaled reads in decomposed dims"
                    )

    # -- halo exchange ---------------------------------------------------------

    def _exchange_dim(self, locals_, grid: str, dim: int, width: int) -> None:
        """Swap ``width`` layers along ``dim`` between neighbour ranks.

        Slices span the FULL extent of the other dimensions (including
        their halos), so running dim 1 before dim 0 transports corner
        data in two hops.
        """
        if width == 0:
            return
        decomp = self.d0 if dim == 0 else self.d1

        def neighbors(r0, r1, delta):
            if dim == 0:
                rr = r0 + delta
                return None if not (0 <= rr < self.p0) else self._rank(rr, r1)
            rr = r1 + delta
            return None if not (0 <= rr < self.p1) else self._rank(r0, rr)

        def take(arr, lo, hi):
            sl = [slice(None)] * arr.ndim
            sl[dim] = slice(lo, hi)
            return arr[tuple(sl)]

        # phase 1: all sends (reliable envelopes: seq + CRC + ack log;
        # corruption is reported through the halo_checksum guard by the
        # transport itself and healed by retransmission)
        for r0 in range(self.p0):
            for r1 in range(self.p1):
                me = self._rank(r0, r1)
                slab = decomp.slabs[r0 if dim == 0 else r1]
                arr = locals_[me][grid]
                lo, hi = slab.local_own_lo, slab.local_own_hi
                down = neighbors(r0, r1, -1)
                if down is not None:
                    self.transport[me].rsend(
                        take(arr, lo, lo + width), down, _TAGS[(dim, -1)]
                    )
                up = neighbors(r0, r1, +1)
                if up is not None:
                    self.transport[me].rsend(
                        take(arr, hi - width, hi), up, _TAGS[(dim, +1)]
                    )
        # phase 2: all receives
        for r0 in range(self.p0):
            for r1 in range(self.p1):
                me = self._rank(r0, r1)
                slab = decomp.slabs[r0 if dim == 0 else r1]
                arr = locals_[me][grid]
                lo, hi = slab.local_own_lo, slab.local_own_hi
                up = neighbors(r0, r1, +1)
                if up is not None:
                    block = self.transport[me].rrecv(up, _TAGS[(dim, -1)])
                    take(arr, hi, hi + width)[...] = block
                down = neighbors(r0, r1, -1)
                if down is not None:
                    block = self.transport[me].rrecv(down, _TAGS[(dim, +1)])
                    take(arr, lo - width, lo)[...] = block

    # -- execution ----------------------------------------------------------------

    def __call__(self, **global_arrays: np.ndarray) -> None:
        grids = self.group.grids()
        missing = grids - set(global_arrays)
        if missing:
            raise TypeError(f"missing grids: {sorted(missing)}")

        locals_ = []
        for r0 in range(self.p0):
            for r1 in range(self.p1):
                s0, s1 = self.d0.slabs[r0], self.d1.slabs[r1]
                locals_.append(
                    {
                        g: np.array(
                            np.asarray(global_arrays[g], dtype=self.dtype)[
                                s0.base : s0.stop, s1.base : s1.stop
                            ],
                            copy=True, order="C",
                        )
                        for g in grids
                    }
                )

        for si in range(len(self.group)):
            for g, (w0, w1) in self.read_halos[si].items():
                # dim-1 first, then dim-0 spanning dim-1 halos: corners
                # arrive transitively.
                with telemetry.tracing.span(
                    f"halo:{g}", cat="dmem",
                    widths=[w0, w1], ranks=self.p0 * self.p1,
                ):
                    self._exchange_dim(locals_, g, 1, w1)
                    self._exchange_dim(locals_, g, 0, w0)
            for me in range(self.p0 * self.p1):
                entry = self._kernels[me][si]
                if entry is None:
                    continue
                local, kernel = entry
                with telemetry.tracing.span(
                    f"apply:{local.name}", cat="dmem", lane=f"rank {me}",
                ):
                    kernel(**{g: locals_[me][g] for g in local.grids()})

        outputs = {st.output for st in self.group}
        for g in outputs:
            for r0 in range(self.p0):
                for r1 in range(self.p1):
                    me = self._rank(r0, r1)
                    s0, s1 = self.d0.slabs[r0], self.d1.slabs[r1]
                    global_arrays[g][
                        s0.own_lo : s0.own_hi, s1.own_lo : s1.own_hi
                    ] = locals_[me][g][
                        s0.local_own_lo : s0.local_own_hi,
                        s1.local_own_lo : s1.local_own_hi,
                    ]

    @property
    def comm_stats(self):
        return self.comms[0].stats
