"""Lower generated OpenCL-C to a plain C99 translation unit.

Our kernels use only the portable core of OpenCL C — address-space
qualifiers, ``get_global_id``, ``long``/``double`` scalars — all of
which map onto C99 with a dozen lines of shim.  Kernel text is included
**verbatim**; nothing is rewritten, so what the simulator executes is
exactly what a real driver would JIT.
"""

from __future__ import annotations

from typing import Mapping

from ..backends.opencl_backend import OpenCLProgram

__all__ = ["shim_header", "translation_unit"]


def shim_header() -> str:
    """C99 definitions standing in for the OpenCL C environment."""
    return """\
#include <stdint.h>
#include <stddef.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* --- OpenCL C shim ------------------------------------------------- */
#define __kernel static
#define __global
#define __local
#define __private
#define __constant const
#define __read_only
#define __write_only

/* the pragma line in kernel source is a no-op under C99 */

static size_t __sf_gid[3];
static size_t get_global_id(int dim) { return __sf_gid[dim]; }
static size_t __sf_gsz[3];
static size_t get_global_size(int dim) { return __sf_gsz[dim]; }
/* ------------------------------------------------------------------- */
"""


def translation_unit(program: OpenCLProgram, ctype: str) -> str:
    """Shim + verbatim kernels + one NDRange driver per kernel.

    Driver ABI:  ``void drive_<kernel>(TYPE** bufs, const double* params,
    const size_t* gsize)`` with ``bufs`` in ``program.buffer_order`` and
    ``params`` in ``program.param_order``.
    """
    n_bufs = len(program.buffer_order)
    n_params = len(program.param_order)
    parts = [shim_header(), program.source]
    for kname, gsize in program.kernel_ranges.items():
        buf_args = ", ".join(f"bufs[{i}]" for i in range(n_bufs))
        param_args = ", ".join(f"params[{i}]" for i in range(n_params))
        call_args = ", ".join(a for a in (buf_args, param_args) if a)
        nd = len(gsize)
        lines = [
            f"void drive_{kname}({ctype}** bufs, const double* params, "
            "const size_t* gsize)",
            "{",
            "  for (int d = 0; d < 3; ++d) { __sf_gsz[d] = 1; __sf_gid[d] = 0; }",
        ]
        for d in range(nd):
            lines.append(f"  __sf_gsz[{d}] = gsize[{d}];")
        indent = "  "
        # In-order serial sweep of the NDRange (a real device would run
        # work-items concurrently; our kernels are data-parallel safe by
        # construction, so the serial order is unobservable).
        for d in range(nd - 1, -1, -1):
            lines.append(
                indent
                + f"for (size_t w{d} = 0; w{d} < gsize[{d}]; ++w{d}) {{"
            )
            indent += "  "
            lines.append(indent + f"__sf_gid[{d}] = w{d};")
        lines.append(indent + f"{kname}({call_args});")
        for d in range(nd):
            indent = indent[:-2]
            lines.append(indent + "}")
        lines.append("}")
        parts.append("\n".join(lines))
        parts.append("")
    return "\n".join(parts)
