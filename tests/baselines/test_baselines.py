"""Hand-optimized baselines agree exactly with the DSL-generated kernels.

These tests are what justify using the baselines as the paper's
"hand-optimized HPGMG" stand-in: two codebases that share nothing must
compute the same operators bit-for-bit (same update order ⇒ identical
floating-point results for GSRB, allclose elsewhere).
"""

import numpy as np
import pytest

from _helpers import run_group
from repro.baselines.kernels_c import BaselineKernels3D
from repro.baselines.mg_c import BaselineMultigrid3D
from repro.core.stencil import Stencil, StencilGroup
from repro.hpgmg.level import Level
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_diagonal,
    cc_laplacian,
    interior,
    interpolation_pc_group,
    jacobi_stencil,
    residual_stencil,
    restriction_stencil,
    smooth_group,
    vc_laplacian,
)
from repro.hpgmg.problem import setup_problem
from repro.hpgmg.solver import MultigridSolver

N = 8
SHAPE = (N + 2,) * 3


@pytest.fixture(scope="module")
def bk():
    return BaselineKernels3D()


@pytest.fixture
def vc_level(rng):
    lvl = Level(N, 3, coefficients="variable")
    lvl.grids["x"][lvl.interior] = rng.random((N,) * 3)
    lvl.grids["rhs"][lvl.interior] = rng.random((N,) * 3)
    return lvl


class TestKernelEquivalence:
    def test_bc(self, bk, rng):
        u = rng.random(SHAPE)
        dsl = run_group(StencilGroup(boundary_stencils(3, "u")), {"u": u})["u"]
        hand = u.copy()
        bk.bc(hand, N)
        np.testing.assert_array_equal(dsl, hand)

    def test_cc7pt(self, bk, rng):
        h = 1.0 / N
        u, out = rng.random(SHAPE), np.zeros(SHAPE)
        s = Stencil(cc_laplacian(3, h, grid="u"), "out", interior(3))
        dsl = run_group(s, {"u": u, "out": out})["out"]
        hand = np.zeros(SHAPE)
        bk.cc7pt(hand, u, N, 1.0 / h**2)
        np.testing.assert_allclose(
            dsl[1:-1, 1:-1, 1:-1], hand[1:-1, 1:-1, 1:-1], rtol=1e-13
        )

    def test_jacobi_cc(self, bk, rng):
        h = 1.0 / N
        lam = 1.0 / cc_diagonal(3, h)
        u, rhs = rng.random(SHAPE), rng.random(SHAPE)
        s = jacobi_stencil(3, cc_laplacian(3, h), lam=lam)
        dsl = run_group(s, {"x": u, "rhs": rhs, "tmp": np.zeros(SHAPE)})["tmp"]
        hand = np.zeros(SHAPE)
        bk.jacobi_cc(hand, u, rhs, N, 1.0 / h**2, (2.0 / 3.0) * lam)
        np.testing.assert_allclose(
            dsl[1:-1, 1:-1, 1:-1], hand[1:-1, 1:-1, 1:-1], rtol=1e-12
        )

    def test_gsrb_both_colors(self, bk, vc_level):
        lvl = vc_level
        invh2 = 1.0 / lvl.h**2
        group = smooth_group(3, vc_laplacian(3, lvl.h), lam="lam")
        arrays = {g: lvl.grids[g].copy() for g in group.grids()}
        dsl = run_group(group, arrays)["x"]
        hand = {k: v.copy() for k, v in lvl.grids.items()}
        for color in (0, 1):
            bk.bc(hand["x"], N)
            bk.gsrb_vc(
                hand["x"], hand["rhs"], hand["beta_0"], hand["beta_1"],
                hand["beta_2"], hand["lam"], N, invh2, color,
            )
        np.testing.assert_allclose(dsl, hand["x"], rtol=1e-13, atol=1e-15)

    def test_residual_vc(self, bk, vc_level):
        lvl = vc_level
        group = StencilGroup(
            boundary_stencils(3, "x")
            + [residual_stencil(3, vc_laplacian(3, lvl.h))]
        )
        arrays = {g: lvl.grids[g].copy() for g in group.grids()}
        dsl = run_group(group, arrays)["res"]
        hand = {k: v.copy() for k, v in lvl.grids.items()}
        bk.bc(hand["x"], N)
        bk.residual_vc(
            hand["res"], hand["x"], hand["rhs"], hand["beta_0"],
            hand["beta_1"], hand["beta_2"], N, 1.0 / lvl.h**2,
        )
        np.testing.assert_allclose(
            dsl[1:-1, 1:-1, 1:-1], hand["res"][1:-1, 1:-1, 1:-1],
            rtol=1e-12, atol=1e-12,
        )

    def test_restriction(self, bk, rng):
        nc = 4
        fine = rng.random((2 * nc + 2,) * 3)
        dsl = run_group(
            restriction_stencil(3),
            {"res": fine, "coarse_rhs": np.zeros((nc + 2,) * 3)},
        )["coarse_rhs"]
        hand = np.zeros((nc + 2,) * 3)
        bk.restrict(hand, fine, nc)
        np.testing.assert_allclose(dsl, hand, rtol=1e-14)

    def test_interp_pc(self, bk, rng):
        nc = 4
        coarse = rng.random((nc + 2,) * 3)
        fine = rng.random((2 * nc + 2,) * 3)
        dsl = run_group(
            interpolation_pc_group(3),
            {"coarse_x": coarse, "x": fine.copy()},
        )["x"]
        hand = fine.copy()
        bk.interp_pc(hand, coarse, nc)
        np.testing.assert_allclose(dsl, hand, rtol=1e-14)


class TestBaselineMultigrid:
    def test_matches_dsl_solver_exactly(self):
        level, _ = setup_problem(16, ndim=3, coefficients="variable",
                                 backend="numpy")
        snap = {k: v.copy() for k, v in level.grids.items()}
        dsl = MultigridSolver(level, backend="c")
        h_dsl = dsl.solve(cycles=3)

        lvl2 = Level(16, 3, coefficients="variable")
        for k in lvl2.grids:
            lvl2.grids[k][...] = snap[k]
        hand = BaselineMultigrid3D(lvl2)
        h_hand = hand.solve(cycles=3)

        np.testing.assert_allclose(h_dsl, h_hand, rtol=1e-10)
        np.testing.assert_allclose(
            level.grids["x"], lvl2.grids["x"], rtol=1e-10, atol=1e-14
        )

    def test_requires_3d_variable(self):
        with pytest.raises(ValueError):
            BaselineMultigrid3D(Level(8, 2, coefficients="variable"))
        with pytest.raises(ValueError):
            BaselineMultigrid3D(Level(8, 3, coefficients="constant"))

    def test_guard_rejects_bad_arrays(self, bk):
        with pytest.raises(TypeError):
            bk.bc(np.zeros(SHAPE, dtype=np.float32), N)
        with pytest.raises(TypeError):
            bk.bc(np.asfortranarray(np.zeros(SHAPE)), N)
