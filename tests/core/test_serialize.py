"""Serialization round-trips for every core object."""

import json

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import Constant, GridRead, Param
from repro.core.serialize import (
    FORMAT_VERSION,
    SerializationError,
    dumps,
    from_dict,
    loads,
    to_dict,
)
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.weights import SparseArray, WeightArray
from repro.hpgmg.operators import (
    restriction_stencil,
    smooth_group,
    vc_laplacian,
)


def roundtrip(obj):
    return loads(dumps(obj))


class TestRoundtrips:
    def test_expressions(self):
        e = Param("w") * GridRead("u", (1, -1)) - 3.0 / Param("d")
        assert roundtrip(e) == e

    def test_neg(self):
        e = -GridRead("u", (0,))
        assert roundtrip(e) == e

    def test_scaled_read(self):
        e = GridRead("fine", (1, 0), scale=(2, 2))
        assert roundtrip(e) == e

    def test_component_numeric_weights(self):
        c = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        assert roundtrip(c) == c

    def test_component_expression_weights(self):
        beta = Component("beta", SparseArray({(1, 0): 1.0}))
        c = Component("x", SparseArray({(-1, 0): Constant(2.0) * beta}))
        back = roundtrip(c)
        # equality via flattening (weights hold structurally equal exprs)
        from repro.core.flatten import flatten_expr

        assert flatten_expr(back) == flatten_expr(c)

    def test_domains(self):
        r = RectDomain((1, 1), (-1, -1), (2, 2))
        assert roundtrip(r) == r
        u = r + RectDomain((2, 2), (-1, -1), (2, 2))
        assert roundtrip(u) == u

    def test_stencil_full_features(self):
        s = restriction_stencil(2)
        back = roundtrip(s)
        assert back == s
        assert back.name == s.name

    def test_stencil_iteration_grid(self):
        s = Stencil(
            GridRead("c", (0,)), "f", RectDomain((1,), (-1,)),
            output_map=OutputMap((2,), (0,), ndim=1),
            iteration_grid="c",
        )
        back = roundtrip(s)
        assert back.iteration_grid == "c"
        assert back == s

    def test_whole_smoother_group(self):
        g = smooth_group(2, vc_laplacian(2, 0.1), lam="lam")
        back = roundtrip(g)
        assert back == g
        assert back.name == g.name

    def test_roundtripped_group_computes_identically(self, rng):
        g = smooth_group(2, vc_laplacian(2, 1 / 10), lam="lam")
        back = roundtrip(g)
        shape = (12, 12)
        arrays = {k: rng.random(shape) for k in g.grids()}
        arrays["lam"] = 0.01 * np.ones(shape)
        a1 = {k: v.copy() for k, v in arrays.items()}
        g.compile(backend="c")(**a1)
        a2 = {k: v.copy() for k, v in arrays.items()}
        back.compile(backend="c")(**a2)
        np.testing.assert_array_equal(a1["x"], a2["x"])


class TestFormat:
    def test_json_clean(self):
        g = smooth_group(2, vc_laplacian(2, 0.1), lam="lam")
        text = dumps(g)
        json.loads(text)  # must be strict JSON

    def test_version_stamped_and_checked(self):
        d = to_dict(Constant(1.0))
        assert d["format_version"] == FORMAT_VERSION
        d["format_version"] = 999
        with pytest.raises(SerializationError, match="version"):
            from_dict(d)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError, match="unknown node"):
            from_dict({"kind": "quantum", "format_version": FORMAT_VERSION})

    def test_unserializable_object_rejected(self):
        with pytest.raises(SerializationError):
            to_dict(object())


from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def random_stencils(draw):
    from repro.core.domains import DomainUnion

    offs = draw(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=1, max_size=4, unique=True,
        )
    )
    weights = {o: draw(st.sampled_from([-1.5, 0.5, 2.0])) for o in offs}
    n_boxes = draw(st.integers(1, 3))
    rects = [
        RectDomain(
            draw(st.tuples(st.integers(0, 3), st.integers(0, 3))),
            (-1, -1),
            draw(st.sampled_from([(1, 1), (2, 2), (3, 1)])),
        )
        for _ in range(n_boxes)
    ]
    dom = rects[0] if n_boxes == 1 else DomainUnion(rects)
    body = Component(draw(st.sampled_from(["u", "v"])), SparseArray(weights))
    return Stencil(body, draw(st.sampled_from(["u", "out"])), dom)


class TestSerializeProperty:
    @settings(max_examples=80, deadline=None)
    @given(s=random_stencils())
    def test_random_stencils_roundtrip_exactly(self, s):
        back = roundtrip(s)
        assert back == s
        assert back.signature() == s.signature()

    @settings(max_examples=40, deadline=None)
    @given(s=random_stencils())
    def test_roundtrip_is_idempotent(self, s):
        once = dumps(s)
        twice = dumps(loads(once))
        assert once == twice
