"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_info():
    proc = run_cli("info")
    assert proc.returncode == 0
    assert "repro-snowflake" in proc.stdout
    assert "backends:" in proc.stdout
    assert "compiler:" in proc.stdout


def test_selftest_passes():
    proc = run_cli("selftest")
    assert proc.returncode == 0
    assert "PASS" in proc.stdout
    assert "MISMATCH" not in proc.stdout


def test_requires_a_command():
    proc = run_cli()
    assert proc.returncode != 0


def test_stats_reports_telemetry(tmp_path):
    bench = tmp_path / "BENCH_pipeline.json"
    proc = run_cli(
        "stats", "--size", "32", "--calls", "2", "--json", str(bench)
    )
    assert proc.returncode == 0
    assert "kernel invocations" in proc.stdout
    assert "telemetry mode" in proc.stdout
    import json

    doc = json.loads(bench.read_text())
    assert doc["schema"] == "snowflake-telemetry/1"
    assert doc["kernels"], "smoke kernel calls must be recorded"


def test_stats_respects_off_mode():
    import os

    env = dict(os.environ, SNOWFLAKE_TELEMETRY="off", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "stats", "--size", "16",
         "--calls", "1", "--backend", "numpy"],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0
    assert "telemetry is off" in proc.stdout


def test_figures_passthrough():
    proc = run_cli("figures", "fig6", "--repeats", "1", timeout=600)
    assert proc.returncode == 0
    assert "STREAM" in proc.stdout


def test_in_process_main():
    from repro.__main__ import main

    assert main(["selftest"]) == 0


def test_trace_smoke_covers_subsystems(tmp_path):
    import json

    out = tmp_path / "trace.json"
    proc = run_cli(
        "trace", "--smoke", "--size", "24", "--calls", "1",
        "--out", str(out), timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "smoke: PASS" in proc.stdout
    from repro.telemetry import tracing

    doc = json.loads(out.read_text())
    assert tracing.validate_chrome_trace(doc) == []
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"frontend", "jit", "kernel", "dmem"} <= cats


def test_explain_names_barrier_grids():
    proc = run_cli("explain", "--size", "12", "--backend", "numpy")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "forced by" in proc.stdout
    assert "RAW on x" in proc.stdout
    assert "gsrb_red" in proc.stdout


def test_explain_json_artifact(tmp_path):
    import json

    proc = run_cli("explain", "--size", "12", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert all(b["grids"] == ["x"] for b in doc["barriers"])
    assert doc["artifact"]["backend"] == "c"
    assert doc["artifact"]["cache_key"]


def test_bench_writes_schema_tagged_artifact(tmp_path):
    import json

    out = tmp_path / "BENCH_kernels.json"
    proc = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", str(out), timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "% of roofline" in proc.stdout
    doc = json.loads(out.read_text())
    assert doc["schema"] == "snowflake-bench-kernels/1"
    for rec in doc["operators"].values():
        assert rec["backends"]["numpy"]["roofline_fraction"] > 0


def test_bench_check_detects_regression(tmp_path):
    import json

    out = tmp_path / "new.json"
    proc = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", str(out), timeout=600,
    )
    assert proc.returncode == 0
    doc = json.loads(out.read_text())

    # baseline far below the fresh run: check passes
    easy = json.loads(json.dumps(doc))
    hard = json.loads(json.dumps(doc))
    for rec in easy["operators"].values():
        rec["backends"]["numpy"]["points_per_s"] *= 0.01
    for rec in hard["operators"].values():
        rec["backends"]["numpy"]["points_per_s"] *= 100.0
    (tmp_path / "easy.json").write_text(json.dumps(easy))
    (tmp_path / "hard.json").write_text(json.dumps(hard))

    ok = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", "", "--check", str(tmp_path / "easy.json"), timeout=600,
    )
    assert ok.returncode == 0
    assert "regression check" in ok.stdout and "PASS" in ok.stdout

    bad = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", "", "--check", str(tmp_path / "hard.json"), timeout=600,
    )
    assert bad.returncode == 1
    assert "REGRESSION" in bad.stdout
