"""Static validation of stencils against concrete grid shapes.

Catches, before any code generation, the classic stencil bugs: reads or
writes that fall outside a grid, shape-incoherent multi-grid operators
(restriction/interpolation ratios), and missing grids/params at call
time.  All backends funnel through :func:`check_group` so error messages
are uniform across micro-compilers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .domains import ResolvedRect
from .stencil import Stencil, StencilGroup

__all__ = ["ValidationError", "check_stencil", "check_group", "footprint_bounds"]


class ValidationError(ValueError):
    """A stencil is inconsistent with the shapes it is applied to."""


def footprint_bounds(
    rect: ResolvedRect, scale: Sequence[int], offset: Sequence[int]
) -> list[tuple[int, int]]:
    """Inclusive per-dim (min, max) of ``scale*i + offset`` over ``rect``.

    Scales are positive, so extremes occur at the domain extremes.
    """
    lo_pt = rect.lows
    hi_pt = rect.highs()
    return [
        (s * lo + o, s * hi + o)
        for s, lo, hi, o in zip(scale, lo_pt, hi_pt, offset)
    ]


def check_stencil(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> None:
    """Raise :class:`ValidationError` if ``stencil`` cannot run on ``shapes``."""
    out_shape = shapes.get(stencil.output)
    if out_shape is None:
        raise ValidationError(
            f"{stencil.name}: output grid {stencil.output!r} missing from shapes"
        )
    out_shape = tuple(int(s) for s in out_shape)
    if len(out_shape) != stencil.ndim:
        raise ValidationError(
            f"{stencil.name}: output grid {stencil.output!r} is "
            f"{len(out_shape)}-D but the stencil is {stencil.ndim}-D"
        )
    for g in stencil.input_grids():
        if g not in shapes:
            raise ValidationError(
                f"{stencil.name}: input grid {g!r} missing from shapes"
            )
        gs = tuple(int(s) for s in shapes[g])
        if len(gs) != stencil.ndim:
            raise ValidationError(
                f"{stencil.name}: grid {g!r} is {len(gs)}-D but the stencil "
                f"is {stencil.ndim}-D"
            )

    # Domains resolve against the *iteration* shape.  For identity output
    # maps that is the output grid; for scaled writes, the domain is in
    # iteration space and the write footprint must land inside the output.
    iter_shape = _iteration_shape(stencil, shapes)
    for rect in stencil.domain.resolve(iter_shape):
        if rect.is_empty():
            continue
        # write footprint
        for d, (lo, hi) in enumerate(
            footprint_bounds(rect, stencil.output_map.scale, stencil.output_map.offset)
        ):
            if lo < 0 or hi >= out_shape[d]:
                raise ValidationError(
                    f"{stencil.name}: write to {stencil.output!r} dim {d} "
                    f"spans [{lo}, {hi}] outside [0, {out_shape[d]})"
                )
        # read footprints
        for read in stencil.flat.reads():
            gs = tuple(int(s) for s in shapes[read.grid])
            for d, (lo, hi) in enumerate(
                footprint_bounds(rect, read.scale, read.offset)
            ):
                if lo < 0 or hi >= gs[d]:
                    raise ValidationError(
                        f"{stencil.name}: read of {read.grid!r} at "
                        f"{read.signature()} dim {d} spans [{lo}, {hi}] "
                        f"outside [0, {gs[d]})"
                    )


def _iteration_shape(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> tuple[int, ...]:
    """Shape the domain's relative (negative) indices resolve against.

    An explicit ``iteration_grid`` wins (interpolation names its coarse
    grid); identity writes iterate over the output grid itself; scaled
    writes without an explicit grid iterate over the logical space of
    every index whose write lands in bounds,
    ``ceil((out_size - offset) / scale)``.
    """
    if stencil.iteration_grid is not None:
        if stencil.iteration_grid not in shapes:
            raise ValidationError(
                f"{stencil.name}: iteration grid "
                f"{stencil.iteration_grid!r} missing from shapes"
            )
        return tuple(int(s) for s in shapes[stencil.iteration_grid])
    out_shape = tuple(int(s) for s in shapes[stencil.output])
    om = stencil.output_map
    if om.is_identity():
        return out_shape
    return tuple(
        -((-(n - o)) // s) for n, s, o in zip(out_shape, om.scale, om.offset)
    )


def iteration_shape(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> tuple[int, ...]:
    """Public alias used by backends."""
    return _iteration_shape(stencil, shapes)


def check_group(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> None:
    for s in group:
        check_stencil(s, shapes)


def check_arrays(
    group: StencilGroup,
    grids: Mapping[str, "object"],
    params: Mapping[str, float],
) -> None:
    """Call-time validation: every grid/param present, dtypes coherent."""
    import numpy as np

    needed_grids = group.grids()
    missing = needed_grids - set(grids)
    if missing:
        raise ValidationError(f"missing grids at call time: {sorted(missing)}")
    needed_params = group.params()
    missing_p = needed_params - set(params)
    if missing_p:
        raise ValidationError(f"missing params at call time: {sorted(missing_p)}")
    dtypes = {np.asarray(grids[g]).dtype for g in needed_grids}
    if len(dtypes) > 1:
        raise ValidationError(f"grids have mixed dtypes: {sorted(map(str, dtypes))}")
