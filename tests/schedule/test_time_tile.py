"""Temporal blocking: bitwise parity, legality evidence, refusals.

The acceptance bar for ``ScheduleOptions(time_tile=k)`` is *bitwise*
equality with ``k`` separate kernel invocations on every CPU backend —
the tiled loop nest reorders (point, application) pairs but each point's
time order is preserved, so the floating-point result is identical, not
merely close.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import SparseArray
from repro.hpgmg.operators import (
    cc_laplacian,
    gsrb_stencils,
    jacobi_stencil,
    periodic_boundary_stencils,
    smooth_group,
    vc_laplacian,
)
from repro.schedule import ScheduleOptions, schedule_for
from repro.schedule.lower import time_tile_verdict

#: the four backends the parity criterion covers
CPU_BACKENDS = ("python", "numpy", "c", "openmp")


def _arrays(group, shape, seed=3):
    rng = np.random.default_rng(seed)
    arrays = {g: rng.standard_normal(shape) for g in group.grids()}
    if "lam" in arrays:  # keep the 1/diag surrogate well-conditioned
        arrays["lam"] = np.abs(arrays["lam"]) * 0.01 + 0.01
    return arrays


def jacobi_case(n=10):
    st_ = jacobi_stencil(2, cc_laplacian(2, 1.0 / n), lam=0.25)
    group = StencilGroup([st_], name="cc_jacobi2")
    shape = (n + 2, n + 2)
    return group, {g: shape for g in group.grids()}, _arrays(group, shape)


def gsrb_case(n=10):
    vc = vc_laplacian(2, 1.0 / n, a=1.0, alpha_grid="alpha")
    red, _ = gsrb_stencils(2, vc, lam="lam")
    group = StencilGroup([red], name="vc_gsrb2")
    shape = (n + 2, n + 2)
    return group, {g: shape for g in group.grids()}, _arrays(group, shape)


def smooth_case(n=8):
    group = smooth_group(2, cc_laplacian(2, 1.0 / n), lam=0.25)
    shape = (n + 2, n + 2)
    return group, {g: shape for g in group.grids()}, _arrays(group, shape)


def periodic_case(n=8):
    group = StencilGroup(
        periodic_boundary_stencils(2, n, grid="x"), name="periodic"
    )
    shape = (n + 2, n + 2)
    return group, {g: shape for g in group.grids()}


def apply_untiled(group, shapes, arrays, backend, k, **options):
    work = {g: a.copy() for g, a in arrays.items()}
    kernel = group.compile(
        backend=backend, shapes=shapes, dtype=np.float64, **options
    )
    for _ in range(k):
        kernel(**work)
    return work


def apply_tiled(group, shapes, arrays, backend, k, **options):
    work = {g: a.copy() for g, a in arrays.items()}
    kernel = group.compile(
        backend=backend, shapes=shapes, dtype=np.float64,
        time_tile=k, **options,
    )
    kernel(**work)
    return work


CASES = {"cc_jacobi": jacobi_case, "vc_gsrb": gsrb_case,
         "smooth": smooth_case}


class TestBitwiseParity:
    @pytest.mark.parametrize("backend", CPU_BACKENDS)
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("tile", [None, 3])
    def test_tiled_equals_k_sweeps(self, backend, case, tile):
        group, shapes, arrays = CASES[case]()
        # `tile` is a compiled-backend knob; interpreters take the
        # untiled nest (their blocked path is covered by the prebuilt-
        # schedule property test below).
        opts = (
            {"tile": tile}
            if tile is not None and backend in ("c", "openmp")
            else {}
        )
        k = 3
        ref = apply_untiled(group, shapes, arrays, backend, k, **opts)
        got = apply_tiled(group, shapes, arrays, backend, k, **opts)
        for g in sorted(shapes):
            np.testing.assert_array_equal(
                got[g], ref[g],
                err_msg=f"{case}/{backend} (tile={tile}) diverges on {g!r}",
            )

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=12),
        k=st.integers(min_value=2, max_value=4),
        tile=st.sampled_from([None, 2, 3]),
    )
    def test_parity_over_generated_schedules(self, n, k, tile):
        # Interpreters only: property runs stay toolchain-independent.
        # A prebuilt schedule carries the spatial tile, exercising the
        # numpy blocked-wavefront path the loose knobs cannot reach.
        group, shapes, arrays = gsrb_case(n)
        sched = schedule_for(
            group, shapes, ScheduleOptions(time_tile=k, tile=tile)
        )
        ref = apply_untiled(group, shapes, arrays, "python", k)
        work = {g: a.copy() for g, a in arrays.items()}
        group.compile(
            backend="numpy", shapes=shapes, dtype=np.float64,
            schedule=sched,
        )(**work)
        for g in sorted(shapes):
            np.testing.assert_array_equal(work[g], ref[g])


class TestLegality:
    def test_single_step_is_wavefront(self):
        group, shapes, _ = gsrb_case()
        sched = schedule_for(group, shapes, ScheduleOptions(time_tile=4))
        tt = sched.time_tile
        assert tt is not None and tt.k == 4
        assert tt.kind == "wavefront" and tt.slope == 0
        assert any(e.claim == "time-tile" for e in tt.evidence)

    def test_multi_step_group_is_fused(self):
        group, shapes, _ = smooth_case()
        sched = schedule_for(group, shapes, ScheduleOptions(time_tile=2))
        assert sched.time_tile.kind == "fused"

    def test_no_tile_requested_records_nothing(self):
        group, shapes, _ = jacobi_case()
        sched = schedule_for(group, shapes, ScheduleOptions())
        assert sched.time_tile is None

    def test_periodic_wraparound_refused_with_evidence(self):
        group, shapes = periodic_case()
        with pytest.raises(ValueError, match="wrap-.?around"):
            schedule_for(group, shapes, ScheduleOptions(time_tile=2))
        sched = schedule_for(group, shapes, ScheduleOptions())
        steps = list(sched.steps())
        _, _, refusals = time_tile_verdict(group, shapes, steps)
        assert refusals
        assert all(e.claim == "time-tile-refused" for e in refusals)

    def test_snapshot_requiring_step_refused(self):
        # In-place stencil with a genuine loop-carried hazard: reads its
        # own output at a forward offset, so each application needs a
        # gather snapshot — untileable by construction.
        s = Stencil(
            Component("x", SparseArray({(1, 0): 1.0, (0, 0): 0.5})),
            "x", RectDomain((1, 1), (-1, -1)), name="carry",
        )
        group = StencilGroup([s], name="carrying")
        shapes = {"x": (12, 12)}
        with pytest.raises(ValueError, match="snapshot"):
            schedule_for(group, shapes, ScheduleOptions(time_tile=2))

    @pytest.mark.parametrize("backend", ["opencl-sim", "cuda-sim"])
    def test_gpu_sims_refuse_time_tiled_schedules(self, backend):
        group, shapes, _ = jacobi_case()
        sched = schedule_for(group, shapes, ScheduleOptions(time_tile=2))
        with pytest.raises(NotImplementedError, match="time-tiled"):
            group.compile(
                backend=backend, shapes=shapes, dtype=np.float64,
                schedule=sched,
            )

    def test_schedule_describe_carries_tile_evidence(self):
        group, shapes, _ = gsrb_case()
        sched = schedule_for(group, shapes, ScheduleOptions(time_tile=3))
        text = sched.describe()
        assert "time tile: k=3" in text
        assert "time-tile:" in text
        assert sched.to_dict()["time_tile"]["k"] == 3
