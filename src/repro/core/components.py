""":class:`Component` — stencil weights bound to a named grid.

A component is itself an :class:`~repro.core.expr.Expr`, so components
compose arithmetically exactly as in the paper's Fig.4::

    Ax        = Component("mesh", WeightArray([[0, top, 0], ...]))
    b         = Component("rhs",  WeightArray([[1]]))
    diff      = b - Ax
    final     = original + lam * diff

Applying ``Component(g, W)`` at iteration point ``i`` means

    sum over offsets o of W:   weight(o, at point i+o) * g[i + o]

where expression-valued weights are evaluated *at the shifted point* —
that anchoring is what makes face-centred variable coefficients (e.g.
``beta_x`` read on the +x face) expressible by nesting a component inside
a weight array.  A ``scale`` turns neighbour reads into strided reads
``g[scale*i + o]`` for restriction-style operators.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .expr import Expr, GridRead
from .weights import SparseArray, WeightArray, _WeightsBase, as_weights

__all__ = ["Component"]


class Component(Expr):
    """Associate a :class:`WeightArray`/:class:`SparseArray` with a grid."""

    __slots__ = ("grid", "weights", "scale")

    def __init__(
        self,
        grid: str,
        weights: "_WeightsBase | Sequence | Mapping",
        scale: Sequence[int] | int | None = None,
    ) -> None:
        if not grid or not isinstance(grid, str):
            raise TypeError("Component grid must be a non-empty string")
        w = as_weights(weights)
        if scale is None:
            sc = (1,) * w.ndim
        elif isinstance(scale, int):
            sc = (scale,) * w.ndim
        else:
            sc = tuple(int(s) for s in scale)
        if len(sc) != w.ndim:
            raise ValueError("scale dimensionality does not match weights")
        if any(s <= 0 for s in sc):
            raise ValueError("scales must be positive integers")
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "scale", sc)

    def __setattr__(self, *a):
        raise AttributeError("Component is immutable")

    @property
    def ndim(self) -> int:
        return self.weights.ndim

    def children(self) -> tuple[Expr, ...]:
        """Expose expression-valued weights so tree walks reach them."""
        return tuple(w for _, w in self.weights if isinstance(w, Expr))

    def reads(self) -> list[GridRead]:
        """Direct reads of this component's own grid (one per weight)."""
        return [
            GridRead(self.grid, off, self.scale) for off, _ in self.weights
        ]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Component)
            and other.grid == self.grid
            and other.scale == self.scale
            and other.weights == self.weights
        )

    def __hash__(self) -> int:
        return hash(("Component", self.grid, self.scale, self.weights))

    def signature(self) -> str:
        sc = "" if all(s == 1 for s in self.scale) else f"*{list(self.scale)}"
        return f"C[{self.grid}{sc}]{self.weights.signature()}"


def identity(grid: str, ndim: int) -> Component:
    """The pass-through component: reads ``grid`` at the centre point."""
    return Component(grid, SparseArray({(0,) * ndim: 1.0}))


def shifted(grid: str, offset: Sequence[int]) -> Component:
    """A single-point component reading ``grid[i + offset]``."""
    off = tuple(int(o) for o in offset)
    return Component(grid, SparseArray({off: 1.0}))


__all__ += ["identity", "shifted"]
