"""Roofline-attributed kernel benchmark (paper SectionV-B).

Times the paper's three measured operators — the constant-coefficient
7-point Laplacian (``cc_7pt``, 24 bytes/point), the constant-coefficient
weighted-Jacobi smoother (``cc_jacobi``, 40 bytes/point) and the
variable-coefficient GSRB half-sweep (``vc_gsrb``, 64 bytes/point) — on
each requested backend, and attributes every achieved rate as a fraction
of the machine's Roofline bound

    roofline points/s = effective_bandwidth(working_set) / bytes_per_point

so a number like ``0.6`` means "60% of the memory-bandwidth speed of
light", which is comparable across machines in a way raw points/s never
is.  Results are written as the schema-tagged ``BENCH_kernels.json``
artifact the CI bench job diffs against its committed baseline
(:func:`check_regression`).

Run with ``python -m repro bench``; pick the machine model with
``--spec host|paper-cpu|paper-gpu`` (the paper specs cost nothing,
``host`` measures STREAM bandwidth first).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from .core.stencil import Stencil
from .core.validate import iteration_shape
from .hpgmg.operators import (
    cc_laplacian,
    gsrb_stencils,
    interior,
    jacobi_stencil,
    vc_laplacian,
)
from .kernel import body_for, kernel_cost, swept_cost
from .machine.roofline import (
    PAPER_BYTES_PER_STENCIL,
    roofline_stencils_per_s,
)
from .machine.specs import PAPER_PLATFORMS, MachineSpec, host_spec
from .telemetry import tracing

__all__ = [
    "BENCH_KERNELS_SCHEMA",
    "DEFAULT_BACKENDS",
    "paper_operators",
    "operator_cost",
    "resolve_spec",
    "run_bench",
    "write_bench_kernels",
    "check_regression",
    "check_sweep_model",
]

#: schema tag stamped into BENCH_kernels.json
BENCH_KERNELS_SCHEMA = "snowflake-bench-kernels/1"

#: backends timed when the caller does not choose
DEFAULT_BACKENDS = ("c", "openmp", "numpy")


def paper_operators(n: int = 32) -> dict[str, Stencil]:
    """The three operators of SectionV-B on an ``n``-interior cubic grid.

    Each is constructed so the analytic cost model
    (:func:`repro.kernel.kernel_cost`) reports exactly the paper
    constant (24 / 40 / 64 bytes/point) — :func:`operator_cost` asserts
    that cross-check every time the bench runs.
    """
    h = 1.0 / n
    cc7 = Stencil(cc_laplacian(3, h), "out", interior(3), name="cc_7pt")
    jac = jacobi_stencil(3, cc_laplacian(3, h), lam="lam")
    vc = vc_laplacian(3, h, a=1.0, alpha_grid="alpha")
    red, _ = gsrb_stencils(3, vc, lam="lam")
    jac.name, red.name = "cc_jacobi", "vc_gsrb"  # report the paper's names
    return {"cc_7pt": cc7, "cc_jacobi": jac, "vc_gsrb": red}


def operator_cost(op_name: str, stencil: Stencil):
    """Cost one bench operator, cross-checking the paper constant.

    The quoted 24/40/64 bytes/point are no longer hand-coded into the
    roofline denominator — they survive only as *assertions* that the
    analytic model reproduces them exactly.
    """
    cost = kernel_cost(stencil)
    paper = PAPER_BYTES_PER_STENCIL.get(op_name)
    if paper is not None and cost.bytes_per_point != paper:
        raise AssertionError(
            f"cost model drifted: {op_name} reports "
            f"{cost.bytes_per_point} bytes/point, paper says {paper}"
        )
    return cost


def resolve_spec(name: str = "host") -> MachineSpec:
    """Map a CLI spec name to a :class:`MachineSpec`.

    ``host`` measures STREAM bandwidth on first use; ``paper-cpu`` /
    ``paper-gpu`` are the paper's testbed records and cost nothing —
    tests and CI use them for determinism.
    """
    if name == "host":
        return host_spec(measure=True)
    if name in ("paper-cpu", "cpu"):
        return PAPER_PLATFORMS["cpu"]
    if name in ("paper-gpu", "gpu"):
        return PAPER_PLATFORMS["gpu"]
    raise ValueError(
        f"unknown spec {name!r}; choose host, paper-cpu or paper-gpu"
    )


def _points(stencil: Stencil, shapes: Mapping[str, tuple[int, ...]]) -> int:
    it_shape = iteration_shape(stencil, shapes)
    return sum(
        r.npoints
        for r in stencil.domain.resolve(it_shape)
        if not r.is_empty()
    )


def _time_backend(
    stencil: Stencil,
    backend: str,
    shapes: Mapping[str, tuple[int, ...]],
    arrays: Mapping[str, np.ndarray],
    calls: int,
    **options,
) -> dict:
    """Best-of-``calls`` wall time of one backend on one operator.

    Compile failures (no toolchain, codegen bug) are *data*, not a
    crash: the record carries ``{"error": ...}`` and the bench goes on.
    ``calls`` must be >= 1 — zero timed calls would leave the best time
    at ``inf`` and poison every derived rate downstream.
    """
    if calls < 1:
        raise ValueError(
            f"calls must be >= 1 (got {calls}): zero timed calls would "
            "report seconds_per_call=inf"
        )
    try:
        kernel = stencil.compile(
            backend=backend, shapes=shapes, dtype=np.float64, **options
        )
    except Exception as e:  # noqa: BLE001 - any backend failure is reportable
        return {"error": f"{type(e).__name__}: {e}"}
    work = {g: a.copy() for g, a in arrays.items()}
    kernel(**work)  # warmup: specialization + caches out of the timing
    best = float("inf")
    for _ in range(calls):
        t0 = time.perf_counter()
        kernel(**work)
        best = min(best, time.perf_counter() - t0)
    return {"seconds_per_call": best, "calls": calls}


def run_bench(
    *,
    n: int = 32,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    spec: MachineSpec | str = "paper-cpu",
    calls: int = 3,
    seed: int = 20170529,
    time_tiles: Sequence[int] = (),
) -> dict:
    """Benchmark the paper operators and attribute against the roofline.

    Returns the ``BENCH_kernels.json`` document (see
    :func:`write_bench_kernels` for the schema).  ``time_tiles`` adds a
    temporal-blocking sweep: for each ``k`` it times one
    ``ScheduleOptions(time_tile=k)`` invocation (= ``k`` fused
    applications), records per-application throughput and speedup over
    the untiled run, and pairs each measurement with the analytic
    :func:`repro.kernel.swept_cost` prediction.
    """
    import platform
    import sys

    from . import __version__

    if calls < 1:
        raise ValueError(
            f"calls must be >= 1 (got {calls}): zero timed calls would "
            "report seconds_per_call=inf"
        )
    time_tiles = tuple(int(k) for k in time_tiles)
    if any(k < 2 for k in time_tiles):
        raise ValueError(
            f"time_tiles must all be >= 2, got {list(time_tiles)}"
        )
    if isinstance(spec, str):
        spec = resolve_spec(spec)
    rng = np.random.default_rng(seed)
    operators = paper_operators(n)
    doc: dict = {
        "schema": BENCH_KERNELS_SCHEMA,
        "version": __version__,
        "unix_time": time.time(),
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
        },
        "spec": {
            "name": spec.name,
            "kind": spec.kind,
            "stream_bw": spec.stream_bw,
            "cache_bytes": spec.cache_bytes,
            "cache_bw": spec.cache_bw,
        },
        "size": n,
        "operators": {},
    }
    shape = (n + 2,) * 3
    for op_name, stencil in operators.items():
        with tracing.span("bench", cat="kernel", operator=op_name):
            shapes = {g: shape for g in stencil.grids()}
            arrays = {
                g: rng.standard_normal(shape) for g in stencil.grids()
            }
            # a singular 1/diag grid would make GSRB explode, not slow
            for g in arrays:
                if g == "lam":
                    arrays[g] = np.abs(arrays[g]) * 0.01 + 0.01
            points = _points(stencil, shapes)
            working_set = sum(a.nbytes for a in arrays.values())
            cost = operator_cost(op_name, stencil)
            bpp = cost.bytes_per_point
            roofline_pps = roofline_stencils_per_s(spec, bpp, working_set)
            _, opt_report = body_for(stencil, optimize=True)
            record: dict = {
                "bytes_per_point": bpp,
                "paper_bytes_per_point": PAPER_BYTES_PER_STENCIL.get(op_name),
                "cost": cost.to_dict(),
                "opt_report": opt_report.to_dict(),
                "points": points,
                "working_set_bytes": working_set,
                "roofline_points_per_s": roofline_pps,
                "backends": {},
            }
            for b in backends:
                timing = _time_backend(stencil, b, shapes, arrays, calls)
                if "seconds_per_call" in timing:
                    pps = points / timing["seconds_per_call"]
                    timing["points_per_s"] = pps
                    timing["roofline_fraction"] = pps / roofline_pps
                record["backends"][b] = timing
            if time_tiles:
                record["sweep"] = _sweep_time_tiles(
                    stencil, backends, shapes, arrays, calls,
                    points=points, record=record, spec=spec,
                    working_set=working_set, time_tiles=time_tiles,
                )
            doc["operators"][op_name] = record
    return doc


def _sweep_time_tiles(
    stencil: Stencil,
    backends: Sequence[str],
    shapes: Mapping[str, tuple[int, ...]],
    arrays: Mapping[str, np.ndarray],
    calls: int,
    *,
    points: int,
    record: dict,
    spec: MachineSpec,
    working_set: int,
    time_tiles: Sequence[int],
) -> dict:
    """Measure ``time_tile=k`` per-application throughput per backend.

    One tiled call performs ``k`` applications, so per-application
    throughput is ``points * k / seconds``.  Each measurement carries
    the :func:`repro.kernel.swept_cost` prediction for a tile whose
    working set is the whole grid (the sequential C default — no
    spatial block, so residency is ``working_set <= cache``).
    """
    body, _ = body_for(stencil)
    sweep: dict = {}
    for b in backends:
        base = record["backends"].get(b, {})
        base_pps = base.get("points_per_s")
        per_k: dict = {}
        for k in time_tiles:
            model = swept_cost(
                body, stencil.output, k,
                tile_bytes=working_set, cache_bytes=spec.cache_bytes,
            )
            timing = _time_backend(
                stencil, b, shapes, arrays, calls, time_tile=k
            )
            if "seconds_per_call" in timing:
                pps = points * k / timing["seconds_per_call"]
                timing["points_per_s"] = pps
                if base_pps:
                    timing["speedup"] = pps / base_pps
            timing["model"] = model.to_dict()
            per_k[str(k)] = timing
        sweep[b] = per_k
    return sweep


def write_bench_kernels(
    doc: dict, path: "str | Path" = "BENCH_kernels.json"
) -> Path:
    """Serialize a :func:`run_bench` document; returns the path written.

    A bare filename lands in ``SNOWFLAKE_ARTIFACT_DIR`` when that is
    set (see :mod:`repro.util.artifacts`).
    """
    from .util.artifacts import artifact_path

    p = artifact_path(path)
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return p


def check_regression(
    new: dict, baseline: dict, tolerance: float = 0.25
) -> list[str]:
    """Compare two bench documents; returns the list of regressions.

    A regression is any (operator, backend) whose ``points_per_s``
    dropped more than ``tolerance`` (fractional) below the baseline.
    Operators/backends missing from either side are skipped — a CI
    runner without gcc must not fail the job on coverage it never had.
    """
    problems: list[str] = []
    for op, base_rec in baseline.get("operators", {}).items():
        new_rec = new.get("operators", {}).get(op)
        if new_rec is None:
            continue
        for b, base_timing in base_rec.get("backends", {}).items():
            new_timing = new_rec.get("backends", {}).get(b)
            if not new_timing or "points_per_s" not in new_timing:
                continue
            if "points_per_s" not in base_timing:
                continue
            old_pps = base_timing["points_per_s"]
            new_pps = new_timing["points_per_s"]
            if new_pps < old_pps * (1.0 - tolerance):
                problems.append(
                    f"{op}/{b}: {new_pps:.3e} points/s is "
                    f"{(1 - new_pps / old_pps) * 100:.0f}% below the "
                    f"baseline {old_pps:.3e}"
                )
        for b, base_ks in base_rec.get("sweep", {}).items():
            new_ks = new_rec.get("sweep", {}).get(b, {})
            for k, base_timing in base_ks.items():
                new_timing = new_ks.get(k)
                if not new_timing or "points_per_s" not in new_timing:
                    continue
                if "points_per_s" not in base_timing:
                    continue
                old_pps = base_timing["points_per_s"]
                new_pps = new_timing["points_per_s"]
                if new_pps < old_pps * (1.0 - tolerance):
                    problems.append(
                        f"{op}/{b}[time_tile={k}]: {new_pps:.3e} "
                        f"points/s is "
                        f"{(1 - new_pps / old_pps) * 100:.0f}% below the "
                        f"baseline {old_pps:.3e}"
                    )
    return problems


def check_sweep_model(doc: dict) -> list[str]:
    """Re-derive every swept-cost prediction in ``doc``; list any drift.

    The recorded ``model`` blocks are analytic, so on a deterministic
    spec (``paper-cpu``) they must be *bit-exact* reproducible from the
    operator definitions — any mismatch means the cost model or the
    operators changed without regenerating the baseline.  This is the
    ``--check`` gate for the sweep half of the bench artifact.
    """
    problems: list[str] = []
    n = doc.get("size")
    cache_bytes = doc.get("spec", {}).get("cache_bytes")
    if n is None or cache_bytes is None:
        return ["document lacks size/spec.cache_bytes; cannot re-derive"]
    operators = paper_operators(int(n))
    for op, rec in doc.get("operators", {}).items():
        sweep = rec.get("sweep")
        if not sweep:
            continue
        stencil = operators.get(op)
        if stencil is None:
            problems.append(f"{op}: unknown operator, cannot re-derive")
            continue
        body, _ = body_for(stencil)
        working_set = rec.get("working_set_bytes")
        for b, per_k in sweep.items():
            for k, timing in per_k.items():
                recorded = timing.get("model")
                if recorded is None:
                    problems.append(f"{op}/{b}[time_tile={k}]: no model")
                    continue
                expected = swept_cost(
                    body, stencil.output, int(k),
                    tile_bytes=working_set, cache_bytes=cache_bytes,
                ).to_dict()
                if recorded != expected:
                    problems.append(
                        f"{op}/{b}[time_tile={k}]: recorded model "
                        f"{recorded} != re-derived {expected}"
                    )
    return problems
