"""Failure injection: toolchain breakage, cache redirection, bad input.

A production JIT must fail loudly and recover cleanly — these tests
break the environment on purpose and check the failure surfaces.
"""

import os

import numpy as np
import pytest

from repro.backends import jit
from repro.backends.jit import CompileError, cache_dir, clear_disk_cache
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil
from repro.core.weights import WeightArray

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


@pytest.fixture
def clean_env(monkeypatch, tmp_path):
    """Redirect the disk cache so injected failures can't poison real runs."""
    monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path / "cache"))
    yield
    # in-process handle cache is keyed by source+cc, no cleanup needed


class TestBrokenToolchain:
    def test_missing_compiler_surfaces(self, monkeypatch, clean_env):
        monkeypatch.setenv("SNOWFLAKE_CC", "/nonexistent/cc-99")
        s = Stencil(LAP, "out", INTERIOR)
        with pytest.raises((CompileError, OSError)):
            s.compile(backend="c", shapes={"u": (8, 8), "out": (8, 8)})

    def test_compiler_that_rejects_everything(self, monkeypatch, clean_env):
        monkeypatch.setenv("SNOWFLAKE_CC", "false")
        with pytest.raises((CompileError, OSError)):
            jit.compile_and_load("int sf_x(void){return 1;}\n// unique A")

    def test_recovery_after_toolchain_restored(self, monkeypatch, clean_env):
        monkeypatch.setenv("SNOWFLAKE_CC", "false")
        src = "double sf_recov(void){ return 4.5; }\n"
        with pytest.raises((CompileError, OSError)):
            jit.compile_and_load(src)
        monkeypatch.setenv("SNOWFLAKE_CC", "gcc")
        lib = jit.compile_and_load(src)
        import ctypes

        lib.sf_recov.restype = ctypes.c_double
        assert lib.sf_recov() == 4.5


class TestCacheControl:
    def test_cache_dir_override(self, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere"
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(target))
        assert cache_dir() == target
        jit.compile_and_load("int sf_cache_probe(void){return 7;}\n")
        assert list(target.glob("sf_*.so"))

    def test_clear_disk_cache_counts(self, monkeypatch, tmp_path):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path / "c2"))
        jit.compile_and_load("int sf_clear_probe(void){return 8;}\n")
        assert clear_disk_cache() >= 2  # .c and .so at least

    def test_reload_from_disk_artifact(self, monkeypatch, tmp_path):
        # simulate a new process: wipe the in-memory handle table, keep
        # the .so — the load must reuse the artifact (same mtime), not
        # rebuild it.
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path / "c3"))
        src = "int sf_disk_probe(void){return 9;}\n"
        jit.compile_and_load(src)
        so = next((tmp_path / "c3").glob("sf_*.so"))
        mtime = so.stat().st_mtime_ns
        monkeypatch.setattr(jit, "_loaded", {})
        lib = jit.compile_and_load(src)  # must hit the disk cache
        assert lib.sf_disk_probe() == 9
        assert so.stat().st_mtime_ns == mtime


class TestBadUserInput:
    def test_nan_inputs_propagate_not_crash(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        u = rng.random((8, 8))
        u[4, 4] = np.nan
        out = np.zeros((8, 8))
        s.compile(backend="c")(u=u, out=out)
        assert np.isnan(out[4, 4])
        assert np.isfinite(out[1, 1])

    def test_zero_interior_grid_is_a_noop(self):
        # 2x2 grid: interior (1,-1) is empty; nothing written, no crash
        s = Stencil(LAP, "out", INTERIOR)
        out = np.full((2, 2), -3.0)
        s.compile(backend="numpy")(u=np.ones((2, 2)), out=out)
        assert (out == -3.0).all()

    def test_int_arrays_rejected_by_compiled_backends(self):
        s = Stencil(LAP, "out", INTERIOR)
        with pytest.raises((TypeError, Exception)):
            s.compile(backend="c")(
                u=np.ones((8, 8), dtype=np.int64),
                out=np.zeros((8, 8), dtype=np.int64),
            )
