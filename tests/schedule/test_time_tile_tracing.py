"""Tracing coverage for the temporally-blocked execution paths.

A time-tiled run must be observable: the wavefront and fused paths open
a ``time_tile`` span carrying ``kind``/``k``, each stencil application
nests under it, and the resulting document exports as a valid Chrome
trace.  Instrumentation must also be inert — a traced tiled run returns
bitwise the same arrays as an untraced one.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.schedule import ScheduleOptions, schedule_for
from repro.telemetry import tracing
from tests.schedule.test_time_tile import (
    gsrb_case,
    periodic_case,
    smooth_case,
)


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    monkeypatch.delenv("SNOWFLAKE_TELEMETRY", raising=False)
    telemetry.set_mode(None)
    telemetry.reset()
    tracing.clear()
    yield
    telemetry.set_mode(None)
    telemetry.reset()
    tracing.clear()


def _run_tiled(group, shapes, arrays, k):
    work = {g: a.copy() for g, a in arrays.items()}
    kernel = group.compile(
        backend="numpy", shapes=shapes, dtype=np.float64, time_tile=k
    )
    kernel(**work)
    return work


class TestWavefrontSpans:
    def test_wavefront_run_opens_time_tile_span(self):
        group, shapes, arrays = gsrb_case()
        with tracing.session(fresh=True):
            _run_tiled(group, shapes, arrays, k=3)
        spans = [e for e in tracing.events() if e["name"] == "time_tile"]
        assert len(spans) == 1
        args = spans[0]["args"]
        assert args["kind"] == "wavefront"
        assert args["k"] == 3
        assert args["backend"] == "numpy"

    def test_stencil_spans_nest_under_time_tile(self):
        group, shapes, arrays = gsrb_case()
        with tracing.session(fresh=True):
            _run_tiled(group, shapes, arrays, k=3)
        stencil_spans = [
            e for e in tracing.events()
            if e["name"].startswith("stencil:")
        ]
        assert stencil_spans, "expected per-stencil spans inside the tile"
        for ev in stencil_spans:
            assert ev["cat"] == "kernel"
            assert ev["args"]["parent"] == "time_tile"


class TestFusedSpans:
    def test_fused_run_labels_kind_and_k(self):
        group, shapes, arrays = smooth_case()
        sched = schedule_for(group, shapes, ScheduleOptions(time_tile=2))
        assert sched.time_tile.kind == "fused"  # precondition
        with tracing.session(fresh=True):
            _run_tiled(group, shapes, arrays, k=2)
        (span,) = [e for e in tracing.events() if e["name"] == "time_tile"]
        assert span["args"]["kind"] == "fused"
        assert span["args"]["k"] == 2

    def test_fused_records_every_application(self):
        group, shapes, arrays = smooth_case()
        k = 2
        with tracing.session(fresh=True):
            _run_tiled(group, shapes, arrays, k=k)
        stencil_spans = [
            e for e in tracing.events()
            if e["name"].startswith("stencil:")
        ]
        # k applications of every stencil in the group, all parented
        assert len(stencil_spans) == k * len(group)
        assert all(
            e["args"]["parent"] == "time_tile" for e in stencil_spans
        )


class TestTraceExport:
    def test_tiled_trace_exports_valid_chrome_document(self, tmp_path):
        group, shapes, arrays = gsrb_case()
        path = tmp_path / "tiled.json"
        with tracing.session(fresh=True):
            _run_tiled(group, shapes, arrays, k=3)
            doc = tracing.export_chrome_trace(path)
        assert tracing.validate_chrome_trace(doc) == []
        on_disk = json.loads(path.read_text())
        assert tracing.validate_chrome_trace(on_disk) == []
        names = {e["name"] for e in on_disk["traceEvents"]}
        assert "time_tile" in names


class TestInertInstrumentation:
    @pytest.mark.parametrize("case", [gsrb_case, smooth_case])
    def test_traced_run_is_bitwise_identical(self, case):
        group, shapes, arrays = case()
        plain = _run_tiled(group, shapes, arrays, k=3)
        with tracing.session(fresh=True):
            traced = _run_tiled(group, shapes, arrays, k=3)
        for g in sorted(shapes):
            np.testing.assert_array_equal(traced[g], plain[g])

    def test_untraced_run_records_nothing(self):
        group, shapes, arrays = gsrb_case()
        _run_tiled(group, shapes, arrays, k=3)
        assert tracing.events() == []


class TestRefusalTelemetry:
    def test_refusal_bumps_counter(self):
        group, shapes = periodic_case()
        before = telemetry.snapshot()["counters"].get(
            "schedule.time_tile.refusals", 0
        )
        with pytest.raises(ValueError):
            schedule_for(group, shapes, ScheduleOptions(time_tile=2))
        after = telemetry.snapshot()["counters"][
            "schedule.time_tile.refusals"
        ]
        assert after == before + 1
