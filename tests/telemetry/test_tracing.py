"""Span tracer: recording, lanes, export, and the pipeline regression.

The last class is the satellite-2 regression test: a workload whose
fallback transition and simulated dmem ranks must land as parseable
Chrome trace events with per-(pid, tid) monotonic timestamps.
"""

import json
import threading
import warnings

import numpy as np
import pytest

from repro import (
    Component,
    RectDomain,
    Stencil,
    StencilGroup,
    WeightArray,
    telemetry,
)
from repro.telemetry import tracing

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


@pytest.fixture(autouse=True)
def clean_tracer():
    tracing.clear()
    yield
    tracing.clear()


class TestActivation:
    def test_inactive_by_default(self):
        assert not tracing.active()
        with tracing.span("work", cat="kernel"):
            pass
        assert tracing.events() == []

    def test_session_records(self):
        with tracing.session():
            with tracing.span("work", cat="kernel", n=3):
                pass
        evs = tracing.events()
        assert len(evs) == 1
        assert evs[0]["name"] == "work"
        assert evs[0]["cat"] == "kernel"
        assert evs[0]["ph"] == "X"
        assert evs[0]["args"]["n"] == 3

    def test_session_fresh_clears_stale_events(self):
        with tracing.session():
            tracing.instant("old")
        with tracing.session(fresh=True):
            tracing.instant("new")
        assert [e["name"] for e in tracing.events()] == ["new"]

    def test_trace_mode_activates_without_session(self):
        telemetry.set_mode("trace")
        assert tracing.active()
        with tracing.span("work"):
            pass
        assert len(tracing.events()) == 1

    def test_sessions_nest(self):
        tracing.start()
        tracing.start()
        tracing.stop()
        assert tracing.active()
        tracing.stop()
        assert not tracing.active()


class TestSpans:
    def test_nested_span_records_parent(self):
        with tracing.session():
            with tracing.span("outer"):
                with tracing.span("inner"):
                    pass
        by_name = {e["name"]: e for e in tracing.events()}
        assert by_name["inner"]["args"]["parent"] == "outer"
        assert "parent" not in by_name["outer"]["args"]

    def test_raising_body_is_recorded_with_error(self):
        with tracing.session():
            with pytest.raises(ValueError):
                with tracing.span("doomed"):
                    raise ValueError("boom")
        (ev,) = tracing.events()
        assert ev["args"]["error"] == "ValueError"

    def test_timestamps_nonnegative_and_ordered(self):
        with tracing.session():
            with tracing.span("a"):
                pass
            with tracing.span("b"):
                pass
        a, b = tracing.events()
        assert a["ts"] >= 0 and a["dur"] >= 0
        assert b["ts"] + b["dur"] >= a["ts"] + a["dur"]

    def test_instant_marker(self):
        with tracing.session():
            tracing.instant("tick", cat="dmem", grid="u")
        (ev,) = tracing.events()
        assert ev["ph"] == "i"
        assert ev["s"] == "t"
        assert ev["args"]["grid"] == "u"

    def test_capacity_counts_drops(self, monkeypatch):
        monkeypatch.setattr(tracing, "SPAN_CAPACITY", 2)
        with tracing.session():
            for _ in range(5):
                tracing.instant("tick")
        assert len(tracing.events()) == 2
        assert tracing.dropped() == 3


class TestLanes:
    def test_lane_maps_to_synthetic_tid(self):
        with tracing.session():
            tracing.instant("a", lane="rank 0")
            tracing.instant("b", lane="rank 1")
            tracing.instant("c", lane="rank 0")
        a, b, c = tracing.events()
        assert a["tid"] >= 900_000_000
        assert a["tid"] != b["tid"]
        assert a["tid"] == c["tid"]

    def test_real_threads_get_distinct_tids(self):
        def work():
            with tracing.span("thread-work"):
                pass

        with tracing.session():
            with tracing.span("main-work"):
                pass
            t = threading.Thread(target=work)
            t.start()
            t.join()
        tids = {e["tid"] for e in tracing.events()}
        assert len(tids) == 2

    def test_lane_named_in_export_metadata(self):
        with tracing.session():
            tracing.instant("a", lane="rank 0")
            doc = tracing.export_chrome_trace()
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "rank 0" in names


class TestExportAndValidate:
    def test_export_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        with tracing.session():
            with tracing.span("work", cat="kernel"):
                tracing.instant("mark", cat="kernel")
            tracing.export_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["schema"] == tracing.TRACE_SCHEMA
        assert doc["otherData"]["dropped_events"] == 0
        assert tracing.validate_chrome_trace(doc) == []

    def test_validate_rejects_empty(self):
        assert tracing.validate_chrome_trace({}) == [
            "traceEvents missing or empty"
        ]

    def test_validate_flags_bad_phase_and_fields(self):
        doc = {
            "otherData": {"schema": tracing.TRACE_SCHEMA},
            "traceEvents": [
                {"ph": "Q", "name": "x", "pid": 1, "tid": 1},
                {"ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1},
            ],
        }
        problems = tracing.validate_chrome_trace(doc)
        assert any("unknown ph" in p for p in problems)
        assert any("bad ts" in p for p in problems)

    def test_validate_flags_nonmonotonic_tid(self):
        ev = {"ph": "i", "name": "t", "pid": 1, "tid": 7, "s": "t"}
        doc = {
            "otherData": {"schema": tracing.TRACE_SCHEMA},
            "traceEvents": [
                dict(ev, ts=100.0),
                dict(ev, ts=50.0),
            ],
        }
        problems = tracing.validate_chrome_trace(doc)
        assert any("not monotonic" in p for p in problems)


class TestPipelineTraceRegression:
    """Satellite 2: fallback + dmem rank events interleave correctly."""

    def make_group(self):
        return StencilGroup([Stencil(LAP, "out", INTERIOR)])

    def test_fallback_and_rank_lanes_in_one_trace(
        self, tmp_path, rng, monkeypatch
    ):
        from repro.dmem.executor import DistributedKernel

        monkeypatch.setenv("SNOWFLAKE_CC", "/nonexistent/snowflake-cc")
        path = tmp_path / "trace.json"
        u = rng.random((20, 20))
        with tracing.session():
            kernel = self.make_group().compile(
                backend="c", fallback=("numpy",)
            )
            out = np.zeros_like(u)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                kernel(u=u, out=out)
            dk = DistributedKernel(self.make_group(), (20, 20), 2,
                                   backend="numpy")
            dk(u=u.copy(), out=np.zeros_like(u))
            tracing.export_chrome_trace(path)

        doc = json.loads(path.read_text())
        assert tracing.validate_chrome_trace(doc) == []
        evs = doc["traceEvents"]
        cats = {e.get("cat") for e in evs}
        assert {"resilience", "dmem", "kernel", "jit"} <= cats

        # the c -> numpy transition is recorded as a fallback instant
        fb = [e for e in evs if e["name"] == "fallback"]
        assert fb and fb[0]["args"]["failed"] == "c"
        assert fb[0]["args"]["next"] == "numpy"

        # each simulated rank owns a named virtual lane
        lane_names = {
            e["args"]["name"]: e["tid"]
            for e in evs
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"rank 0", "rank 1"} <= set(lane_names)
        for r in ("rank 0", "rank 1"):
            rank_evs = [e for e in evs if e.get("tid") == lane_names[r]]
            assert any(e["name"].startswith("apply:") for e in rank_evs)

        # rank-lane timestamps are monotonic within each lane even
        # though both ranks run on the one driver thread
        for tid in lane_names.values():
            ends = [
                e["ts"] + e.get("dur", 0.0)
                for e in evs
                if e.get("tid") == tid and e["ph"] != "M"
            ]
            assert ends == sorted(ends)
