"""The transform protocol: legality-checked rewrites of the two IRs.

A :class:`Transform` is a small, composable rewrite object: it takes a
:class:`~repro.schedule.ir.Schedule` or a
:class:`~repro.kernel.ir.KernelBody` and returns a **new** one (both
IRs are immutable; nothing is rewritten in place).  Every schedule
rewrite is re-validated against the Diophantine/dependence evidence
the lowering stage produced — an illegal composition raises a typed
:class:`TransformError` carrying the refusing
:class:`~repro.schedule.ir.Evidence` instead of producing wrong code.

Compose with ``|``::

    from repro.transform import fuse, color_sweep, tile

    sched = (fuse() | color_sweep() | tile(16))(base)

:class:`Pipeline` is the composition; :func:`repro.transform.preset.
preset_pipeline` renders a :class:`~repro.schedule.ScheduleOptions`
record as one (the presets are now a thin veneer over this API).
"""

from __future__ import annotations

from ..kernel.ir import KernelBody
from ..schedule.ir import Evidence, Schedule

__all__ = ["TransformError", "Transform", "Pipeline"]


class TransformError(ValueError):
    """An illegal transform composition, with the refusing evidence.

    Subclasses :class:`ValueError` so every caller that treated
    schedule refusals as value errors (the autotuner, the backends)
    keeps working unchanged.  ``evidence`` is the single
    :class:`~repro.schedule.ir.Evidence` that refused the rewrite;
    ``refusals`` carries the full list when the check found several.
    """

    def __init__(
        self,
        message: str,
        evidence: Evidence | None = None,
        refusals: tuple[Evidence, ...] = (),
    ) -> None:
        super().__init__(message)
        if evidence is None and refusals:
            evidence = refusals[0]
        self.evidence = evidence
        self.refusals = tuple(refusals) if refusals else (
            (evidence,) if evidence is not None else ()
        )


class Transform:
    """One rewrite of a :class:`Schedule` or :class:`KernelBody`.

    Subclasses implement :meth:`apply_schedule` and/or
    :meth:`apply_kernel`; applying a transform to the IR kind it does
    not understand raises :class:`TransformError` (claim
    ``target-mismatch``).  Schedule results are re-validated with
    :func:`repro.transform.schedule_tx.verify_schedule` after every
    application — a transform cannot hand back a schedule that violates
    the dependence plan, the snapshot verdicts or the sweep recognition
    it was built from.
    """

    #: short name used by :meth:`describe` and error messages
    name = "transform"

    def __call__(self, obj):
        if isinstance(obj, Schedule):
            out = self.apply_schedule(obj)
            from .schedule_tx import verify_schedule

            problems = verify_schedule(out)
            if problems:
                raise TransformError(
                    f"{self.describe()} produced an illegal schedule: "
                    + "; ".join(str(p) for p in problems),
                    refusals=tuple(problems),
                )
            return out
        if isinstance(obj, KernelBody):
            return self.apply_kernel(obj)
        raise TransformError(
            f"{self.describe()} cannot rewrite {type(obj).__name__}; "
            "transforms take a Schedule or a KernelBody",
            evidence=Evidence(
                "target-mismatch",
                f"{self.describe()} applied to {type(obj).__name__}",
            ),
        )

    # -- per-kind hooks (subclasses override the one(s) they support) ------

    def apply_schedule(self, sched: Schedule) -> Schedule:
        raise TransformError(
            f"{self.describe()} is a kernel transform; it cannot rewrite "
            "a Schedule",
            evidence=Evidence(
                "target-mismatch", f"{self.describe()} applied to a Schedule"
            ),
        )

    def apply_kernel(self, body: KernelBody) -> KernelBody:
        raise TransformError(
            f"{self.describe()} is a schedule transform; it cannot "
            "rewrite a KernelBody",
            evidence=Evidence(
                "target-mismatch",
                f"{self.describe()} applied to a KernelBody",
            ),
        )

    def describe(self) -> str:
        return f"{self.name}()"

    def __or__(self, other: "Transform | Pipeline") -> "Pipeline":
        if isinstance(other, Pipeline):
            return Pipeline((self, *other.transforms))
        if isinstance(other, Transform):
            return Pipeline((self, other))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class Pipeline:
    """An ordered composition of transforms (applied left to right)."""

    def __init__(self, transforms=()) -> None:
        flat: list[Transform] = []
        for t in transforms:
            if isinstance(t, Pipeline):
                flat.extend(t.transforms)
            else:
                flat.append(t)
        self.transforms: tuple[Transform, ...] = tuple(flat)

    def __call__(self, obj):
        for t in self.transforms:
            obj = t(obj)
        return obj

    def __iter__(self):
        return iter(self.transforms)

    def __len__(self) -> int:
        return len(self.transforms)

    def __or__(self, other: "Transform | Pipeline") -> "Pipeline":
        if isinstance(other, Pipeline):
            return Pipeline((*self.transforms, *other.transforms))
        if isinstance(other, Transform):
            return Pipeline((*self.transforms, other))
        return NotImplemented

    def describe(self) -> str:
        if not self.transforms:
            return "identity"
        return " | ".join(t.describe() for t in self.transforms)

    def describe_list(self) -> tuple[str, ...]:
        return tuple(t.describe() for t in self.transforms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pipeline {self.describe()}>"
