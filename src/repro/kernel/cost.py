"""Analytic per-point cost model over the kernel IR.

Conventions follow the paper's SectionV-B *compulsory traffic* model
(double precision, write-allocate caches, no cache-bypass stores, no
capacity/conflict misses):

* **bytes/point** — each *distinct grid* read costs one word (perfect
  in-sweep reuse of neighbouring loads), the store costs one word, and
  a write-allocate cache first fills the written line unless the sweep
  already reads the output grid.  This reproduces the paper's quoted
  24 / 40 / 64 bytes per stencil for the constant-coefficient 7-point
  Laplacian, the constant-coefficient Jacobi smoother and the
  variable-coefficient GSRB smoother (asserted exactly in
  :mod:`repro.bench` and the test suite);
* **flops/point** — IEEE operations executed per iteration point of
  the *optimized* body: add/mul/div count 1, a structural FMA counts
  2.  Depth-0 (hoisted) bindings are excluded — they run once per
  sweep, not per point.

``flops / bytes`` is the arithmetic intensity the roofline model
positions against the machine balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .ir import KAdd, KDiv, KFma, KMul, KernelBody, walk

if TYPE_CHECKING:  # pragma: no cover
    from ..core.stencil import Stencil

__all__ = ["KernelCost", "body_cost", "kernel_cost", "WORD_BYTES"]

#: double precision word, the paper's convention.
WORD_BYTES = 8.0


@dataclass(frozen=True)
class KernelCost:
    """Per-point analytic cost of one stencil sweep."""

    flops_per_point: int
    read_grids: int        # distinct grids read
    loads_per_point: int   # distinct loads the optimized body performs
    bytes_per_point: float
    write_allocate: bool

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of compulsory traffic."""
        return self.flops_per_point / self.bytes_per_point

    def to_dict(self) -> dict:
        return {
            "flops_per_point": self.flops_per_point,
            "read_grids": self.read_grids,
            "loads_per_point": self.loads_per_point,
            "bytes_per_point": self.bytes_per_point,
            "arithmetic_intensity": self.arithmetic_intensity,
            "write_allocate": self.write_allocate,
        }


def body_cost(
    body: KernelBody, output: str, *, write_allocate: bool = True
) -> KernelCost:
    """Cost a kernel body writing grid ``output``."""
    read_grids = body.grids()
    traffic = WORD_BYTES * len(read_grids)
    traffic += WORD_BYTES  # the store itself
    if write_allocate and output not in read_grids:
        traffic += WORD_BYTES  # write-allocate fill of the stored line
    flops = 0
    for expr in [l.expr for l in body.inner_lets()] + [body.result]:
        for node in walk(expr):
            if isinstance(node, (KAdd, KMul, KDiv)):
                flops += 1
            elif isinstance(node, KFma):
                flops += 2
    return KernelCost(
        flops_per_point=flops,
        read_grids=len(read_grids),
        loads_per_point=len(body.loads()),
        bytes_per_point=traffic,
        write_allocate=write_allocate,
    )


def kernel_cost(
    stencil: "Stencil",
    *,
    write_allocate: bool = True,
    optimize: bool = True,
) -> KernelCost:
    """Cost one stencil from its (by default optimized) kernel body."""
    from .lower import body_for

    body, _ = body_for(stencil, optimize=optimize)
    return body_cost(body, stencil.output, write_allocate=write_allocate)
