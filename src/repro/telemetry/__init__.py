"""Pipeline telemetry: counters, timers, and traces with near-zero cost.

"You cannot claim a hot path got faster without counters and traces" —
this package is the observability layer under the repo's measurement
discipline.  Every stage of the compile/execute pipeline reports here:

* frontend passes (``frontend.pass.*`` timers, stencils eliminated),
* the JIT (cache hit/miss/quarantine, compiler wall time, lock waits),
* every backend's kernel invocations (calls, seconds, points/s),
* the resilience layer (fallback activations, retries, guard trips,
  injected faults fired),
* the simulated distributed fabric (messages, bytes, barriers,
  exchange wall time).

Control with ``SNOWFLAKE_TELEMETRY=off|counters|trace`` (default
``counters``; ``off`` reduces every hook to one cached string
compare).  Read with :func:`snapshot`, export the perf trajectory with
:func:`export_bench_json` (→ ``BENCH_pipeline.json``), or render a
report with ``python -m repro stats``.
"""

from .registry import (
    BENCH_SCHEMA,
    MODES,
    TRACE_CAPACITY,
    count,
    enabled,
    event,
    export_bench_json,
    kernel_call,
    mode,
    record_time,
    reset,
    set_mode,
    snapshot,
    timed,
    tracing,
)
from .report import format_stats, render_stats

__all__ = [
    "BENCH_SCHEMA",
    "MODES",
    "TRACE_CAPACITY",
    "count",
    "enabled",
    "event",
    "export_bench_json",
    "format_stats",
    "kernel_call",
    "mode",
    "record_time",
    "render_stats",
    "reset",
    "set_mode",
    "snapshot",
    "timed",
    "tracing",
]
