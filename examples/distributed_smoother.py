"""Distributed-memory execution of a Snowflake smoother (paper §VII).

The same variable-coefficient GSRB smoother used everywhere else in
this repository, run SPMD across simulated MPI-style ranks: grids are
block-decomposed, halo rows travel as messages, and each rank executes
its share through the C micro-compiler.  The console output shows the
two things that matter about a distributed stencil code — the answer
does not change, and the communication volume scales with the surface,
not the volume, of the decomposition.

Run:  python examples/distributed_smoother.py
"""

import time

import numpy as np

from repro.dmem import DistributedKernel
from repro.hpgmg.operators import smooth_group, vc_laplacian

N = 64
SHAPE = (N + 2, N + 2)
H = 1.0 / N

group = smooth_group(2, vc_laplacian(2, H), lam="lam")

rng = np.random.default_rng(11)
base = {g: rng.random(SHAPE) for g in group.grids()}
base["lam"] = 0.01 * np.ones(SHAPE)

# -- single node reference ------------------------------------------------------
ref = {k: v.copy() for k, v in base.items()}
group.compile(backend="c")(**ref)

print(f"VC GSRB smooth on {N}x{N}, 1-D block decomposition\n")
print(f"{'ranks':>5}  {'match':>6}  {'messages':>8}  {'halo bytes':>10}  "
      f"{'bytes/rank-interface':>20}")
for nranks in (1, 2, 4, 8):
    got = {k: v.copy() for k, v in base.items()}
    dk = DistributedKernel(group, SHAPE, nranks, backend="c")
    dk(**got)
    match = np.allclose(got["x"], ref["x"], atol=1e-13)
    s = dk.comm_stats
    per_iface = s.bytes_sent / max(nranks - 1, 1)
    print(f"{nranks:5d}  {str(match):>6}  {s.messages:8d}  "
          f"{s.bytes_sent:10d}  {per_iface:20.0f}")

print("\nhalo width inferred from the stencil offsets:",
      DistributedKernel(group, SHAPE, 2).halo)
print("bytes per interface is constant: surface, not volume, "
      "of the decomposition.")

# -- deadlock detection: the fabric proves protocol completeness ------------------
from repro.dmem.comm import CommError, SimComm

w = SimComm.world(2)
try:
    w[0].recv(source=1)
except CommError as e:
    print(f"\nfabric rejects incomplete protocols eagerly:\n  {e}")
