"""C + OpenMP micro-compiler (paper SectionIV-A).

Scheduling follows the paper's design literally:

* each stencil becomes an **OpenMP task**, with larger stencils split
  into sub-tasks by tiling the outermost free loop;
* the dependence analysis groups stencils into **phases** using the
  greedy policy — a barrier (``taskwait``) is inserted only when an
  upcoming stencil consumes what an in-flight one produced;
* **multicolor reordering**, **fusion** and arbitrary-dimension
  **tiling** arrive precomputed on the
  :class:`~repro.schedule.ir.Schedule` steps; the tile size stays an
  explicit knob so it can be autotuned (:mod:`repro.tuning.autotune`).

Fused chains are phase-local by construction (see
:func:`repro.schedule.build_schedule`), so a chain can never straddle a
``taskwait`` — the legacy program-order chaining could, hoisting a
store across the barrier it depended on.
"""

from __future__ import annotations

from typing import Mapping

from ..core.stencil import StencilGroup
from ..schedule import Schedule, ScheduleOptions, as_schedule
from .base import register_backend
from .c_backend import CBackend
from .codegen_c import (
    C_PREAMBLE,
    CodegenContext,
    StencilLoops,
    ctype_for,
)

__all__ = ["OpenMPBackend", "generate_openmp_source"]


def generate_openmp_source(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    dtype,
    *,
    tile: int | None = 8,
    multicolor: bool = True,
    schedule: "Schedule | ScheduleOptions | str" = "greedy",
    fuse: bool = False,
    func_name: str = "sf_kernel",
) -> str:
    """Render the group as a task-parallel OpenMP translation unit.

    ``schedule`` may be a prebuilt :class:`~repro.schedule.ir.Schedule`,
    a :class:`ScheduleOptions`, or a policy string (legacy usage; the
    remaining knobs then fill in the rest).  Each schedule step becomes
    one task-tiled nest; ``taskwait`` separates the phases.
    """
    norm = {g: tuple(int(x) for x in shapes[g]) for g in shapes}
    sched = as_schedule(
        schedule, group, norm,
        ScheduleOptions(fuse=fuse, multicolor=multicolor, tile=tile),
    )
    ctx = CodegenContext(group, norm, ctype_for(dtype))

    lines: list[str] = [C_PREAMBLE, "#include <omp.h>"]
    lines.append(
        f"void {func_name}({ctx.ctype}** grids, const double* params)"
    )
    lines.append("{")
    for l in ctx.prologue():
        lines.append("  " + l)

    # Pre-plan loops per step so snapshot allocation happens once,
    # outside the parallel region.
    snap_names: dict[int, str] = {}
    step_loops: list[list[StencilLoops]] = []
    for phase in sched.phases:
        row = []
        for step in phase.steps:
            head = group[step.head]
            snap = None
            if step.snapshot:
                snap = f"snap_{step.head}"
                snap_names[step.head] = snap
            row.append(
                StencilLoops(
                    ctx, head, tile=sched.options.tile, parity=step.sweep,
                    snapshot_name=snap,
                    fused_with=[group[i] for i in step.stencils[1:]],
                    unroll=sched.options.unroll,
                )
            )
        step_loops.append(row)
    for si, snap in snap_names.items():
        g = group[si].output
        n = ctx.grid_size(g)
        lines.append(
            f"  {ctx.ctype}* {snap} = ({ctx.ctype}*)malloc("
            f"{n} * sizeof({ctx.ctype}));"
        )

    tt = sched.time_tile
    lines.append("  #pragma omp parallel")
    lines.append("  #pragma omp single")
    lines.append("  {")
    if tt is not None and tt.kind == "wavefront":
        # Single slope-0 step: spatial blocks are independent across
        # all k applications, so each block becomes one task carrying
        # its own inner time loop — no taskwait between applications.
        loops = step_loops[0][0]
        names = ", ".join(
            group[i].name for i in tuple(sched.steps())[0].stencils
        )
        lines.append(
            f"    /* wavefront time tile k={tt.k}: {names} */"
        )
        for l in loops.emit_wavefront(tt.k, task_pragma="#pragma omp task"):
            lines.append("    " + l)
        lines.append("    #pragma omp taskwait")
    else:
        body: list[str] = []
        for phase, row in zip(sched.phases, step_loops):
            body.append(f"/* phase {phase.index} */")
            # Fill snapshots serially before spawning the phase's tasks.
            for step in phase.steps:
                snap = snap_names.get(step.head)
                if snap is not None:
                    g = group[step.head].output
                    n = ctx.grid_size(g)
                    src = ctx.grid_cname[g]
                    body.append(
                        f"memcpy({snap}, {src}, {n} * sizeof({ctx.ctype}));"
                    )
            for step, loops in zip(phase.steps, row):
                names = ", ".join(group[i].name for i in step.stencils)
                body.append(
                    f"/* stencil(s) {list(step.stencils)}: {names} */"
                )
                # Unsafe in-place stencils were given a snapshot above,
                # which restores gather semantics — so every step may be
                # tiled into concurrent tasks.
                body.extend(loops.emit(task_pragma="#pragma omp task"))
            body.append("#pragma omp taskwait")
        if tt is not None:
            # Fused time tile: the single thread in the `single` region
            # re-runs the whole barrier-ordered program k times.
            lines.append(f"    /* fused time tile k={tt.k} */")
            lines.append(
                f"    for (int64_t sf_tt = 0; sf_tt < {tt.k}; ++sf_tt) {{"
            )
            lines.extend("      " + l for l in body)
            lines.append("    }")
        else:
            lines.extend("    " + l for l in body)
    lines.append("  }")
    for snap in snap_names.values():
        lines.append(f"  free({snap});")
    lines.append("}")
    return "\n".join(lines) + "\n"


class OpenMPBackend(CBackend):
    """The ``openmp`` micro-compiler.

    Scheduling options: ``schedule`` (a prebuilt Schedule or one of
    ``greedy``/``wavefront``/``serial``), ``tile`` (task granularity on
    the outermost loop, default 8 planes), ``multicolor`` (default
    True), ``fuse``.
    """

    name = "openmp"
    _openmp = True

    _KNOBS = {
        "schedule": "greedy", "tile": 8, "multicolor": True, "fuse": False,
        "time_tile": 1, "unroll": None,
    }

    def generate(self, group, shapes, dtype, *, schedule=None) -> str:
        return generate_openmp_source(group, shapes, dtype, schedule=schedule)


register_backend(OpenMPBackend(), "omp")
