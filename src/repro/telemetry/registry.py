"""The telemetry registry: counters, timers, kernel stats, trace events.

One process-wide registry instrumented across the whole pipeline —
frontend passes, JIT cache/compiler, every backend's kernel
invocations, the resilience layer, and the simulated distributed
fabric.  Zero third-party dependencies, thread-safe, and near-free
when switched off.

Four modes, selected by ``SNOWFLAKE_TELEMETRY`` (re-read lazily, so
tests may monkeypatch the environment) or programmatically with
:func:`set_mode`:

* ``off``      — every hook returns after one cached string compare;
* ``counters`` — the default: aggregate counters, timers, latency
  histograms (:mod:`repro.telemetry.metrics`), and per-backend kernel
  statistics;
* ``events``   — counters plus the structured JSON event log
  (:mod:`repro.telemetry.events`, schema ``snowflake-events/1``);
* ``trace``    — everything: counters, structured events, the bounded
  ring buffer of timestamped events (:func:`event`), and span
  recording (:mod:`repro.telemetry.tracing`).

Naming convention: dotted lowercase paths, coarse-to-fine
(``jit.cache.hit.disk``, ``guards.trip.nonfinite``,
``frontend.pass.reorder``).  Counters and timers share one namespace
but live in separate tables; :func:`snapshot` returns both as plain
dicts, ready for JSON.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from collections import Counter, deque
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "MODES",
    "TRACE_CAPACITY",
    "mode",
    "set_mode",
    "enabled",
    "events_enabled",
    "count",
    "record_time",
    "timed",
    "kernel_call",
    "event",
    "snapshot",
    "reset",
    "export_bench_json",
    "BENCH_SCHEMA",
    "STATS_SCHEMA",
]

MODES = ("off", "counters", "events", "trace")

#: ring-buffer size of the trace-mode event log
TRACE_CAPACITY = 4096

#: schema tag stamped into every JSON export
BENCH_SCHEMA = "snowflake-telemetry/1"

#: schema tag stamped into every :func:`snapshot` (and so into
#: ``repro stats --json`` output), versioned like the bench/trace
#: exporters
STATS_SCHEMA = "snowflake-stats/1"

_lock = threading.Lock()
_counters: Counter = Counter()
_timers: dict[str, list[float]] = {}  # name -> [count, total, min, max]
_kernels: dict[str, list[float]] = {}  # backend -> [calls, seconds, points]
_trace: deque = deque(maxlen=TRACE_CAPACITY)
_t0 = time.perf_counter()  # trace timestamps are relative to import

_forced: str | None = None  # set_mode() override; None = follow the env
_env_raw: str | None = None  # last raw env value parsed
_env_mode: str = "counters"
_env_warned = False


def mode() -> str:
    """Resolve the active mode (``set_mode`` wins over the environment)."""
    global _env_raw, _env_mode, _env_warned
    if _forced is not None:
        return _forced
    raw = os.environ.get("SNOWFLAKE_TELEMETRY", "")
    if raw == _env_raw:
        return _env_mode
    val = raw.strip().lower() or "counters"
    if val not in MODES:
        if not _env_warned:
            _env_warned = True
            warnings.warn(
                f"SNOWFLAKE_TELEMETRY={raw!r} is not one of {MODES}; "
                "falling back to 'counters'",
                stacklevel=2,
            )
        val = "counters"
    _env_raw, _env_mode = raw, val
    return val


def set_mode(value: str | None) -> None:
    """Force a mode programmatically; ``None`` resumes env control."""
    global _forced
    if value is not None and value not in MODES:
        raise ValueError(f"telemetry mode must be one of {MODES}, got {value!r}")
    _forced = value


def enabled() -> bool:
    """Is any collection active?  The hot-path gate."""
    return mode() != "off"


def events_enabled() -> bool:
    """Is the event ring buffer recording (mode ``trace``)?"""
    return mode() == "trace"


# -- collection hooks ---------------------------------------------------------


def count(name: str, n: int | float = 1) -> None:
    """Add ``n`` to counter ``name`` (no-op when telemetry is off)."""
    if mode() == "off":
        return
    with _lock:
        _counters[name] += n


def record_time(name: str, seconds: float) -> None:
    """Fold one duration into timer ``name`` (count/total/min/max).

    Every timer also feeds the fixed-bucket latency histogram of the
    same name (:mod:`repro.telemetry.metrics`), so p50/p95/p99 are
    recoverable for free wherever a timer already exists.
    """
    if mode() == "off":
        return
    with _lock:
        agg = _timers.get(name)
        if agg is None:
            _timers[name] = [1, seconds, seconds, seconds]
        else:
            agg[0] += 1
            agg[1] += seconds
            agg[2] = min(agg[2], seconds)
            agg[3] = max(agg[3], seconds)
    from .metrics import _observe_raw

    _observe_raw(name, seconds)


@contextmanager
def timed(name: str):
    """Time a block into timer ``name``.

    Records only on clean exit — an aborted body must not pollute the
    mean (the same contract as :class:`repro.util.timing.Timer`).
    """
    if mode() == "off":
        yield
        return
    t0 = time.perf_counter()
    yield
    record_time(name, time.perf_counter() - t0)


def kernel_call(backend: str, seconds: float, points: int) -> None:
    """Record one compiled-kernel invocation for ``backend``.

    Also feeds the ``kernel.call`` latency histogram (labelled by
    backend) — the per-call distribution behind the p50/p95/p99 the
    ``repro stats`` report and the OpenMetrics exporter surface.
    """
    if mode() == "off":
        return
    with _lock:
        agg = _kernels.get(backend)
        if agg is None:
            _kernels[backend] = [1, seconds, points]
        else:
            agg[0] += 1
            agg[1] += seconds
            agg[2] += points
    from .metrics import _observe_raw

    _observe_raw("kernel.call", seconds, {"backend": backend})


def event(name: str, **fields) -> None:
    """Record one named pipeline event.

    Two destinations, both bounded:

    * ``trace`` mode — the in-process ring buffer (post-mortem
      snapshot inspection, as always);
    * ``events`` or ``trace`` mode — the structured JSON event log
      (:mod:`repro.telemetry.events`), one ``snowflake-events/1``
      record with span correlation.

    Inert in ``off``/``counters`` modes, so hot paths may call it
    freely.
    """
    m = mode()
    if m == "trace":
        stamp = time.perf_counter() - _t0
        with _lock:
            _trace.append({"t": round(stamp, 6), "name": name, **fields})
    if m in ("events", "trace"):
        from .events import emit

        emit(name, **fields)


# -- reading ------------------------------------------------------------------


def snapshot() -> dict:
    """Plain-dict view of everything collected so far.

    Tagged ``schema: snowflake-stats/1``.  ``counters`` — name ->
    number; ``timers`` — name -> ``{count, total_s, mean_s, min_s,
    max_s}``; ``kernels`` — backend -> ``{calls, seconds, points,
    points_per_s}`` (``points_per_s`` is ``None`` while the accumulated
    time is below timer resolution — never ``inf``); ``histograms`` —
    the merged latency histograms with p50/p95/p99 (see
    :func:`repro.telemetry.metrics.snapshot_histograms`); ``trace`` —
    the event list (trace mode only).
    """
    from .metrics import snapshot_histograms

    with _lock:
        counters = dict(_counters)
        timers = {
            name: {
                "count": agg[0],
                "total_s": agg[1],
                "mean_s": agg[1] / agg[0],
                "min_s": agg[2],
                "max_s": agg[3],
            }
            for name, agg in _timers.items()
        }
        kernels = {
            backend: {
                "calls": int(agg[0]),
                "seconds": agg[1],
                "points": int(agg[2]),
                "points_per_s": (agg[2] / agg[1] if agg[1] > 0 else None),
            }
            for backend, agg in _kernels.items()
        }
        trace = list(_trace)
    out = {
        "schema": STATS_SCHEMA,
        "mode": mode(),
        "counters": counters,
        "timers": timers,
        "kernels": kernels,
        "histograms": snapshot_histograms(),
    }
    if out["mode"] == "trace":
        out["trace"] = trace
    return out


def reset() -> None:
    """Zero every table, histogram, event log and trace (test isolation)."""
    from .events import reset as reset_events
    from .metrics import reset_histograms

    with _lock:
        _counters.clear()
        _timers.clear()
        _kernels.clear()
        _trace.clear()
    reset_histograms()
    reset_events()


# -- export -------------------------------------------------------------------


def export_bench_json(
    path: str | os.PathLike = "BENCH_pipeline.json"
) -> Path:
    """Write the current snapshot as a perf-trajectory artifact.

    The file is the repo's recorded performance trajectory
    (``BENCH_pipeline.json``): schema-tagged (envelope
    ``snowflake-telemetry/1``, embedded snapshot ``snowflake-stats/1``
    as ``stats_schema``), host-stamped, and safe to diff across
    commits.  A bare filename lands in ``SNOWFLAKE_ARTIFACT_DIR`` when
    that is set (long-lived services must not litter their CWD).
    Returns the path written.
    """
    import platform
    import sys

    from .. import __version__
    from ..util.artifacts import artifact_path

    doc = {
        **snapshot(),
        "version": __version__,
        "unix_time": time.time(),
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
        },
    }
    doc["stats_schema"] = doc.pop("schema", STATS_SCHEMA)
    doc["schema"] = BENCH_SCHEMA
    p = artifact_path(path)
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return p
