"""dmem — a simulated distributed-memory backend (paper SectionVII).

The paper's future work targets distributed-memory systems via MPI.
No MPI launcher exists in this environment, so per DESIGN.md the
substrate is simulated: :class:`~repro.dmem.comm.SimComm` provides an
MPI-flavoured message-passing fabric between in-process ranks (send /
recv / barrier with byte accounting and deadlock detection), and
:class:`~repro.dmem.executor.DistributedKernel` runs any StencilGroup
over a 1-D block decomposition with automatic halo-width inference from
the canonical flat form and halo exchanges placed by the same
dependence reasoning the shared-memory backends use.

The exercised code path — decompose, exchange ghost rows, run the
per-rank kernel through any micro-compiler, gather — is exactly what an
mpi4py backend would run with ``SimComm`` swapped for ``MPI.COMM_WORLD``.
"""

from .comm import CommError, SimComm
from .decompose import BlockDecomposition
from .executor import DistributedKernel
from .executor2d import DistributedKernel2D

__all__ = [
    "CommError",
    "SimComm",
    "BlockDecomposition",
    "DistributedKernel",
    "DistributedKernel2D",
]
