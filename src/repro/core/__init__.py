"""The Snowflake DSL: weights, components, domains, stencils."""

from .components import Component, identity, shifted
from .domains import DomainUnion, RectDomain, ResolvedRect, as_domain
from .expr import BinOp, Constant, Expr, GridRead, Neg, Param, as_expr
from .flatten import FlatStencil, FlatTerm, flatten_expr
from .stencil import OutputMap, Stencil, StencilGroup
from .validate import ValidationError, check_group, check_stencil
from .weights import SparseArray, WeightArray, as_weights

__all__ = [
    "Component",
    "identity",
    "shifted",
    "DomainUnion",
    "RectDomain",
    "ResolvedRect",
    "as_domain",
    "BinOp",
    "Constant",
    "Expr",
    "GridRead",
    "Neg",
    "Param",
    "as_expr",
    "FlatStencil",
    "FlatTerm",
    "flatten_expr",
    "OutputMap",
    "Stencil",
    "StencilGroup",
    "ValidationError",
    "check_group",
    "check_stencil",
    "SparseArray",
    "WeightArray",
    "as_weights",
]
