"""Component: binding weights to grids, algebra, scaled reads."""

import pytest

from repro.core.components import Component, identity, shifted
from repro.core.expr import BinOp, GridRead, Param
from repro.core.weights import SparseArray, WeightArray


class TestConstruction:
    def test_from_weight_array(self):
        c = Component("mesh", WeightArray([[1]]))
        assert c.grid == "mesh"
        assert c.ndim == 2
        assert c.scale == (1, 1)

    def test_from_raw_list(self):
        c = Component("u", [1, -2, 1])
        assert c.weights == WeightArray([1, -2, 1])

    def test_from_dict(self):
        c = Component("u", {(0, 1): 2.0})
        assert c.weights == SparseArray({(0, 1): 2.0})

    def test_scalar_scale_broadcasts(self):
        c = Component("fine", {(0, 0): 1.0}, scale=2)
        assert c.scale == (2, 2)

    def test_scale_dim_mismatch(self):
        with pytest.raises(ValueError):
            Component("u", [1], scale=(2, 2))

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            Component("u", [1], scale=0)

    def test_empty_grid_name(self):
        with pytest.raises(TypeError):
            Component("", [1])

    def test_immutable(self):
        c = Component("u", [1])
        with pytest.raises(AttributeError):
            c.grid = "v"


class TestAlgebra:
    def test_components_compose_with_operators(self):
        b = Component("rhs", WeightArray([[1]]))
        Ax = Component("mesh", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        diff = b - Ax
        assert isinstance(diff, BinOp)
        assert diff.op == "-"

    def test_paper_fig4_expression_builds(self):
        original = Component("mesh", WeightArray([[1]]))
        lam = Component("lam", WeightArray([[1]]))
        b = Component("rhs", WeightArray([[1]]))
        Ax = Component("mesh", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        final = original + lam * (b - Ax)
        from repro.core.expr import grids_read

        assert grids_read(final) == {"mesh", "lam", "rhs"}

    def test_scalar_times_component(self):
        c = 2.0 * Component("u", [1])
        assert isinstance(c, BinOp) and c.op == "*"


class TestReadsAndChildren:
    def test_reads_one_per_weight(self):
        c = Component("u", WeightArray([1, 0, 2]))
        reads = c.reads()
        assert sorted(r.offset for r in reads) == [(-1,), (1,)]

    def test_reads_carry_scale(self):
        c = Component("f", {(0,): 1.0, (1,): 1.0}, scale=2)
        assert all(r.scale == (2,) for r in c.reads())

    def test_children_exposes_expr_weights_only(self):
        p = Param("w")
        c = Component("u", SparseArray({(0,): p, (1,): 3.0}))
        assert c.children() == (p,)

    def test_equality(self):
        a = Component("u", [1, 2, 3])
        b = Component("u", [1, 2, 3])
        assert a == b and hash(a) == hash(b)
        assert a != Component("v", [1, 2, 3])
        assert a != Component("u", [1, 2, 3], scale=2)

    def test_signature_mentions_scale_only_when_nontrivial(self):
        assert "*" not in Component("u", [1]).signature().split("]")[0]
        assert "*[2]" in Component("u", [1], scale=2).signature()


class TestHelpers:
    def test_identity(self):
        c = identity("u", 3)
        assert c.weights.entries == {(0, 0, 0): 1.0}

    def test_shifted(self):
        c = shifted("u", (0, -1))
        assert c.weights.entries == {(0, -1): 1.0}
