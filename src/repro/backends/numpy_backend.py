"""Vectorized numpy micro-compiler.

Executes each domain box as strided-slice arithmetic over the stencil's
:class:`~repro.kernel.ir.KernelBody`: the iteration lattice maps to
numpy views (no copies — per the numpy performance idiom, views not
copies), each let-binding is evaluated once per box — so a grid read
shared by many terms is fetched and combined once per sweep — and the
result is materialized before being assigned to the output view
(rect-local gather semantics).

The dependence analysis is consulted exactly as in the compiled
backends: an in-place stencil only pays for a snapshot of its output
grid when a loop-carried hazard is proven — GSRB's colored sub-stencils
run snapshot-free.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .. import telemetry
from ..analysis.dependence import is_parallel_safe
from ..core.domains import ResolvedRect
from ..core.flatten import term_scalar
from ..core.stencil import Stencil, StencilGroup
from ..core.validate import iteration_shape
from ..kernel import body_for, eval_rect, eval_scalar_lets
from ..schedule import as_schedule, pop_schedule_spec
from .base import Backend, register_backend

__all__ = ["NumpyBackend", "lattice_slices", "split_rect"]


def split_rect(rect: ResolvedRect, tile: int | None) -> list[ResolvedRect]:
    """Cut ``rect`` into blocks of ``tile`` planes along its outermost
    free dimension (``None``/oversized tile: the rect itself)."""
    d = next((i for i in range(rect.ndim) if rect.counts[i] > 1), None)
    if d is None or not tile or rect.counts[d] <= tile:
        return [rect]
    subs = []
    for start in range(0, rect.counts[d], tile):
        lows = list(rect.lows)
        lows[d] = rect.lows[d] + rect.strides[d] * start
        counts = list(rect.counts)
        counts[d] = min(tile, rect.counts[d] - start)
        subs.append(ResolvedRect(tuple(lows), rect.strides, tuple(counts)))
    return subs


def lattice_slices(
    rect: ResolvedRect, scale: Sequence[int], offset: Sequence[int]
) -> tuple[slice, ...]:
    """Numpy basic-indexing slices selecting ``scale*i + offset`` over
    ``rect`` — a view, never a copy."""
    out = []
    for lo, st, ct, s, o in zip(
        rect.lows, rect.strides, rect.counts, scale, offset
    ):
        a_lo = s * lo + o
        a_st = s * st
        if a_st == 0:
            out.append(slice(a_lo, a_lo + 1, 1))
        else:
            a_hi = a_lo + a_st * (ct - 1)
            out.append(slice(a_lo, a_hi + 1, a_st))
    return tuple(out)


class _StencilExec:
    """Shape-specialized executor for one stencil."""

    def __init__(
        self,
        stencil: Stencil,
        shapes: Mapping[str, tuple[int, ...]],
    ) -> None:
        self.stencil = stencil
        it_shape = iteration_shape(stencil, shapes)
        self.rects = [
            r for r in stencil.domain.resolve(it_shape) if not r.is_empty()
        ]
        self.needs_snapshot = stencil.is_inplace() and not is_parallel_safe(
            stencil, shapes
        )
        om = stencil.output_map
        self.out_slices = [
            lattice_slices(r, om.scale, om.offset) for r in self.rects
        ]
        # The kernel body this executor evaluates (consults the package
        # toggle at specialization time, like the compiled backends).
        self.body, _ = body_for(stencil)
        # Precompute read slices per (rect, load) — distinct loads only;
        # the binding structure already deduplicated repeats.
        self.load_slices = [
            {
                ld.key: lattice_slices(r, ld.scale, ld.offset)
                for ld in self.body.loads()
            }
            for r in self.rects
        ]
        # Legacy term path: slices per GridRead.
        self.read_slices = [
            {
                read: lattice_slices(r, read.scale, read.offset)
                for read in stencil.flat.reads()
            }
            for r in self.rects
        ]

    def run(
        self, arrays: Mapping[str, np.ndarray], params: Mapping[str, float]
    ) -> None:
        stencil = self.stencil
        out = arrays[stencil.output]
        snapshot = out.copy() if self.needs_snapshot else None

        def source(grid: str) -> np.ndarray:
            if snapshot is not None and grid == stencil.output:
                return snapshot
            return arrays[grid]

        scalar_env = eval_scalar_lets(self.body, params)
        for rect_i, (rect, oslc) in enumerate(zip(self.rects, self.out_slices)):
            lslc = self.load_slices[rect_i]
            # eval_rect always returns a fresh array, so assigning onto
            # an output view that aliases a source grid is safe even
            # when folding reduced the body to a bare load.
            out[oslc] = eval_rect(
                self.body,
                lambda ld: source(ld.grid)[lslc[ld.key]],
                params,
                rect.counts,
                out.dtype,
                scalar_env,
            )

    def prepare_blocks(self, tile: int | None) -> None:
        """Precompute the blocked-wavefront traversal (time tiling).

        Each rect is cut into ``tile``-plane blocks along its outermost
        free dimension; :meth:`run_wavefront` then runs *all* ``k``
        applications of one block before moving to the next — the
        blocked reference implementation of the wavefront tile, bitwise
        equal to ``k`` whole sweeps because the schedule proved slope 0
        (no read of this step ever crosses a block boundary into
        another writer's cells).
        """
        if self.needs_snapshot:
            raise ValueError("time-tiled steps are snapshot-free by legality")
        om = self.stencil.output_map
        self.blocks = []
        for rect in self.rects:
            for sub in split_rect(rect, tile):
                self.blocks.append(
                    (
                        sub,
                        lattice_slices(sub, om.scale, om.offset),
                        {
                            ld.key: lattice_slices(sub, ld.scale, ld.offset)
                            for ld in self.body.loads()
                        },
                    )
                )

    def run_wavefront(
        self,
        arrays: Mapping[str, np.ndarray],
        params: Mapping[str, float],
        k: int,
    ) -> None:
        """Blocked wavefront: ``k`` applications per spatial block."""
        out = arrays[self.stencil.output]
        scalar_env = eval_scalar_lets(self.body, params)
        for sub, oslc, lslc in self.blocks:
            for _ in range(k):
                out[oslc] = eval_rect(
                    self.body,
                    lambda ld: arrays[ld.grid][lslc[ld.key]],
                    params,
                    sub.counts,
                    out.dtype,
                    scalar_env,
                )

    def run_terms(
        self, arrays: Mapping[str, np.ndarray], params: Mapping[str, float]
    ) -> None:
        """Legacy term-by-term evaluation (pre-kernel-IR path).

        Kept as an independent cross-check for the kernel tests; the
        scalar factor goes through the shared
        :func:`~repro.core.flatten.term_scalar`.
        """
        stencil = self.stencil
        out = arrays[stencil.output]
        snapshot = out.copy() if self.needs_snapshot else None

        def source(grid: str) -> np.ndarray:
            if snapshot is not None and grid == stencil.output:
                return snapshot
            return arrays[grid]

        for rect_i, (rect, oslc) in enumerate(zip(self.rects, self.out_slices)):
            acc: np.ndarray | None = None
            rslc = self.read_slices[rect_i]
            for term in stencil.flat.terms:
                piece: np.ndarray | float = term_scalar(term, params)
                for read in term.reads:
                    piece = piece * source(read.grid)[rslc[read]]
                if isinstance(piece, float):
                    piece = np.full(rect.counts, piece, dtype=out.dtype)
                if acc is None:
                    acc = np.array(piece, dtype=out.dtype, copy=True)
                else:
                    acc += piece
            if acc is None:  # all-zero body
                acc = np.zeros(rect.counts, dtype=out.dtype)
            out[oslc] = acc


class NumpyBackend(Backend):
    """The ``numpy`` micro-compiler: strided-view vectorization.

    Needs no system toolchain — together with ``python`` it is the
    terminal, always-available link of every fallback chain.
    """

    name = "numpy"
    requires_toolchain = False

    _KNOBS = {
        "schedule": "greedy", "fuse": False, "multicolor": False,
        "time_tile": 1,
    }

    def specializer(self, group: StencilGroup, **options):
        spec = pop_schedule_spec(options, backend=self.name, knobs=self._KNOBS)

        def specialize(shapes, dtype) -> Callable:
            sched = as_schedule(spec, group, shapes)
            order = sched.stencil_order()
            execs = [_StencilExec(group[i], shapes) for i in order]
            telemetry.count("codegen.numpy.stencil_execs", len(execs))
            tt = sched.time_tile

            if tt is not None and tt.kind == "wavefront":
                for ex in execs:
                    ex.prepare_blocks(sched.options.tile)

                def impl(arrays, params):
                    if telemetry.tracing.active():
                        with telemetry.tracing.span(
                            "time_tile", cat="schedule", backend="numpy",
                            kind="wavefront", k=tt.k,
                        ):
                            for ex in execs:
                                with telemetry.tracing.span(
                                    f"stencil:{ex.stencil.name}",
                                    cat="kernel", backend="numpy",
                                ):
                                    ex.run_wavefront(arrays, params, tt.k)
                    else:
                        for ex in execs:
                            ex.run_wavefront(arrays, params, tt.k)

                return impl

            applications = 1 if tt is None else tt.k

            def impl(arrays, params):
                if tt is not None and telemetry.tracing.active():
                    with telemetry.tracing.span(
                        "time_tile", cat="schedule", backend="numpy",
                        kind=tt.kind, k=tt.k,
                    ):
                        _apply(arrays, params)
                else:
                    _apply(arrays, params)

            def _apply(arrays, params):
                for _ in range(applications):
                    if telemetry.tracing.active():
                        for ex in execs:
                            with telemetry.tracing.span(
                                f"stencil:{ex.stencil.name}", cat="kernel",
                                backend="numpy",
                            ):
                                ex.run(arrays, params)
                    else:
                        for ex in execs:
                            ex.run(arrays, params)

            return impl

        return specialize


register_backend(NumpyBackend(), "np")
