"""The structured JSON event log: modes, schema, ring, sinks, spans."""

import io
import json

import pytest

from repro import telemetry
from repro.telemetry import events, tracing
from repro.telemetry.events import (
    EVENT_CAPACITY,
    EVENTS_SCHEMA,
    KNOWN_EVENTS,
    emit,
    validate_events,
)


class TestModes:
    def test_counters_mode_records_nothing(self):
        emit("guards.trip", guard="nonfinite")
        assert events.records() == []
        assert not events.structured_enabled()

    def test_events_mode_records(self):
        telemetry.set_mode("events")
        emit("guards.trip", guard="nonfinite")
        (rec,) = events.records()
        assert rec["event"] == "guards.trip"
        assert rec["guard"] == "nonfinite"

    def test_trace_mode_also_records(self):
        telemetry.set_mode("trace")
        emit("jit.quarantine")
        assert events.structured_enabled()
        assert len(events.records()) == 1


class TestRecordShape:
    def test_envelope_fields(self):
        telemetry.set_mode("events")
        emit("resilience.fallback", failed="c", error="CompileError")
        (rec,) = events.records()
        assert rec["schema"] == EVENTS_SCHEMA
        assert isinstance(rec["t"], float)
        assert isinstance(rec["thread"], int)
        assert rec["span"] is None  # no open span
        assert validate_events([rec]) == []

    def test_payload_cannot_clobber_envelope(self):
        telemetry.set_mode("events")
        emit("x", schema="evil", t="evil", event="evil")
        (rec,) = events.records()
        assert rec["schema"] == EVENTS_SCHEMA
        assert rec["field_schema"] == "evil"
        assert rec["field_event"] == "evil"

    def test_non_json_payload_stringified_not_raised(self):
        telemetry.set_mode("events")
        emit("x", arr=object())
        (rec,) = events.records()
        json.dumps(rec)  # now serializable
        assert validate_events([rec]) == []

    def test_span_correlation_inside_open_span(self):
        telemetry.set_mode("trace")
        with tracing.session(fresh=True):
            with tracing.span("kernel:test", cat="kernel"):
                emit("guards.trip", guard="halo")
                sid = tracing.current_span_id()
        (rec,) = [r for r in events.records() if r["event"] == "guards.trip"]
        assert rec["span"] == sid
        assert sid is not None


class TestRegistryFunnel:
    def test_registry_event_forwards_in_events_mode(self):
        telemetry.set_mode("events")
        telemetry.event("resilience.retry", backend="c")
        (rec,) = events.records()
        assert rec["event"] == "resilience.retry"
        # events mode must NOT populate the trace-mode ring
        assert "trace" not in telemetry.snapshot()

    def test_registry_event_inert_in_counters_mode(self):
        telemetry.event("resilience.retry", backend="c")
        assert events.records() == []

    def test_counts_survive_ring_eviction(self):
        telemetry.set_mode("events")
        for i in range(EVENT_CAPACITY + 10):
            emit("spam", i=i)
        assert len(events.records()) == EVENT_CAPACITY
        assert events.dropped() == 10
        assert events.counts_by_name()["spam"] == EVENT_CAPACITY + 10


class TestSinks:
    def test_file_sink_writes_one_json_line_per_event(self, tmp_path):
        telemetry.set_mode("events")
        sink = tmp_path / "events.jsonl"
        events.set_sink(sink)
        try:
            emit("dmem.rank.crash", rank=1)
            emit("dmem.restore", sweep=4)
        finally:
            events.set_sink(None)
        lines = sink.read_text().strip().splitlines()
        assert len(lines) == 2
        recs = [json.loads(ln) for ln in lines]
        assert [r["event"] for r in recs] == ["dmem.rank.crash",
                                              "dmem.restore"]
        assert validate_events(recs) == []

    def test_stream_sink(self):
        telemetry.set_mode("events")
        buf = io.StringIO()
        events.set_sink(buf)
        try:
            emit("guards.trip")
        finally:
            events.set_sink(None)
        assert json.loads(buf.getvalue())["event"] == "guards.trip"

    def test_env_sink(self, tmp_path, monkeypatch):
        telemetry.set_mode("events")
        sink = tmp_path / "env.jsonl"
        monkeypatch.setenv("SNOWFLAKE_EVENTS_SINK", str(sink))
        emit("faults.fired", site="comm.send.drop")
        assert json.loads(sink.read_text())["site"] == "comm.send.drop"

    def test_dead_sink_never_raises(self):
        telemetry.set_mode("events")

        class Dead:
            def write(self, s):
                raise OSError("gone")

            def flush(self):
                raise OSError("gone")

        events.set_sink(Dead())
        try:
            emit("x")  # must not raise
        finally:
            events.set_sink(None)
        assert len(events.records()) == 1


class TestPipelineEvents:
    """The instrumented call-sites actually feed the log."""

    def test_fallback_chain_emits_degraded_event(self, monkeypatch, tmp_path):
        import numpy as np

        from repro import Component, RectDomain, Stencil, WeightArray

        telemetry.set_mode("events")
        # a broken compiler and a cold cache force the c -> numpy fallback
        monkeypatch.setenv("SNOWFLAKE_CC", "definitely-not-a-compiler")
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path / "cache"))
        lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            kernel = stencil.compile(
                backend="c", shapes={"u": (8, 8), "out": (8, 8)},
                fallback=("c", "numpy"),
            )
            kernel(u=np.zeros((8, 8)), out=np.zeros((8, 8)))
        names = {r["event"] for r in events.records()}
        assert "resilience.fallback" in names
        assert "resilience.degraded" in names
        (deg,) = [r for r in events.records()
                  if r["event"] == "resilience.degraded"]
        assert deg["primary"] == "c" and deg["serving"] == "numpy"

    def test_time_tile_refusal_emits_event(self):
        from repro.core.stencil import StencilGroup
        from repro.hpgmg.operators import periodic_boundary_stencils
        from repro.schedule import ScheduleOptions, schedule_for

        telemetry.set_mode("events")
        group = StencilGroup(
            periodic_boundary_stencils(2, 8, grid="x"), name="periodic"
        )
        shapes = {g: (10, 10) for g in group.grids()}
        with pytest.raises(ValueError):
            schedule_for(group, shapes, ScheduleOptions(time_tile=2))
        (rec,) = [r for r in events.records()
                  if r["event"] == "schedule.time_tile.refused"]
        assert rec["group"] == "periodic" and rec["k"] == 2
        assert rec["detail"]

    @pytest.mark.faults
    def test_transport_retransmit_emits_event(self):
        import numpy as np

        from repro.dmem.transport import ReliableComm
        from repro.resilience import faults

        telemetry.set_mode("events")
        world = ReliableComm.world(2)
        with faults.inject("comm.send.drop", times=1):
            world[0].rsend(np.arange(4.0), 1, tag=7)
        world[1].rrecv(0, tag=7)
        names = [r["event"] for r in events.records()]
        assert "dmem.retransmit" in names

    @pytest.mark.faults
    def test_rank_crash_and_recovery_emit_events(self):
        import numpy as np

        from repro import Component, RectDomain, Stencil
        from repro.core.stencil import StencilGroup
        from repro.core.weights import WeightArray
        from repro.dmem.executor import DistributedKernel
        from repro.dmem.recovery import RecoveryPolicy
        from repro.resilience.faults import inject

        telemetry.set_mode("events")
        lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        group = StencilGroup(
            [Stencil(lap, "u", RectDomain((1, 1), (-1, -1)), name="smooth")]
        )
        dk = DistributedKernel(group, (16, 16), 2, backend="numpy")
        dk.scatter(u=np.random.default_rng(0).random((16, 16)))
        with inject("comm.rank.crash", times=1):
            dk.run(3, recovery=RecoveryPolicy())
        names = {r["event"] for r in events.records()}
        assert "dmem.rank.crash" in names
        assert "dmem.checkpoint" in names
        assert "dmem.restore" in names
        assert "dmem.rank.failure" in names


class TestContract:
    def test_known_events_are_dotted_and_sorted_uniquely(self):
        assert len(set(KNOWN_EVENTS)) == len(KNOWN_EVENTS)
        for name in KNOWN_EVENTS:
            assert name == name.lower() and " " not in name
            assert "." in name

    def test_reset_clears_ring_counts_and_drops(self):
        telemetry.set_mode("events")
        emit("x")
        telemetry.reset()
        assert events.records() == []
        assert events.counts_by_name() == {}
        assert events.dropped() == 0
