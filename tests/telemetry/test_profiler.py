"""The sampling self-profiler: attribution, budget, exports."""

import time

import pytest

from repro.telemetry import profiler, tracing


@pytest.fixture(autouse=True)
def stopped_profiler():
    profiler.stop()
    profiler.reset()
    yield
    profiler.stop()
    profiler.reset()


def _busy(seconds):
    """Spin inside a span long enough for the sampler to land."""
    with tracing.span("hotspot", cat="kernel"):
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < seconds:
            sum(range(500))


class TestAttribution:
    def test_samples_attribute_to_open_span(self):
        with profiler.profile(interval=0.002):
            _busy(0.25)
        snap = profiler.snapshot()
        assert snap["samples_total"] > 0
        assert "hotspot" in snap["spans"]
        rec = snap["spans"]["hotspot"]
        assert rec["cat"] == "kernel"
        assert 0.0 < rec["fraction"] <= 1.0

    def test_spans_maintained_without_trace_recording(self):
        # the sampler must see stacks even when span *recording* is off
        assert not tracing.active()
        with profiler.profile(interval=0.002):
            _busy(0.25)
        assert "hotspot" in profiler.snapshot()["spans"]

    def test_idle_time_counted_separately(self):
        with profiler.profile(interval=0.002):
            time.sleep(0.1)  # no span open anywhere
        snap = profiler.snapshot()
        assert snap["idle_samples"] > 0

    def test_stop_is_idempotent_and_start_restarts(self):
        profiler.start(interval=0.01)
        assert profiler.active()
        profiler.stop()
        profiler.stop()
        assert not profiler.active()
        profiler.start(interval=0.01)
        assert profiler.active()


class TestOverheadBudget:
    def test_duty_cycle_measured_and_within_budget(self):
        with profiler.profile(interval=0.002, budget=0.5):
            _busy(0.3)
        snap = profiler.snapshot()
        assert snap["ticks"] > 0
        assert 0.0 <= snap["duty_cycle"] < 0.5
        assert snap["within_budget"]
        assert snap["budget"] == 0.5

    def test_governor_backs_off_when_over_budget(self):
        # an absurdly tight budget forces the interval to grow
        with profiler.profile(interval=0.001, budget=1e-9):
            _busy(0.4)
        snap = profiler.snapshot()
        assert snap["backoffs"] >= 1
        assert snap["interval_s"] > 0.001

    def test_overhead_helper_matches_snapshot(self):
        with profiler.profile(interval=0.002):
            _busy(0.1)
            assert profiler.overhead() == pytest.approx(
                profiler.snapshot()["duty_cycle"], abs=0.05
            )


class TestSurfaces:
    def test_render_top_lists_hot_span(self):
        with profiler.profile(interval=0.002):
            _busy(0.25)
        out = profiler.render_top(limit=5)
        assert "hotspot" in out
        assert "overhead" in out
        assert "%" in out

    def test_render_top_empty(self):
        out = profiler.render_top()
        assert "no samples" in out

    def test_chrome_trace_export_is_valid(self, tmp_path):
        import json

        with profiler.profile(interval=0.002):
            _busy(0.25)
        path = tmp_path / "profile.json"
        doc = profiler.export_chrome_trace(path)
        assert doc["traceEvents"], "expected at least one sample instant"
        assert all(e["ph"] == "i" for e in doc["traceEvents"])
        assert tracing.validate_chrome_trace(doc) == []
        on_disk = json.loads(path.read_text())
        assert tracing.validate_chrome_trace(on_disk) == []
        assert on_disk["otherData"]["profile"]["samples_total"] > 0

    def test_openmetrics_exports_profile_families(self):
        from repro.telemetry.metrics import (
            render_openmetrics,
            validate_openmetrics,
        )

        with profiler.profile(interval=0.002):
            _busy(0.25)
        text = render_openmetrics()
        assert validate_openmetrics(text) == []
        assert 'snowflake_profile_samples_total{cat="kernel",span="hotspot"}' \
            in text
        assert "snowflake_profile_overhead_ratio" in text


class TestEnvActivation:
    def test_env_starts_with_interval_ms(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_PROFILE", "2.5")
        assert profiler.maybe_start_from_env()
        assert profiler.active()
        assert profiler.snapshot()["interval_s"] == pytest.approx(0.0025)

    def test_env_off_values_do_not_start(self, monkeypatch):
        for off in ("", "0", "off", "false"):
            monkeypatch.setenv("SNOWFLAKE_PROFILE", off)
            assert not profiler.maybe_start_from_env()
            assert not profiler.active()
