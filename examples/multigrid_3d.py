"""HPGMG in Snowflake: a full 3-D variable-coefficient multigrid solve.

Reproduces the paper's headline demonstration (SectionV): the complete
geometric multigrid solver — GSRB smoothing with interspersed Dirichlet
boundaries, residual, full-weighting restriction, interpolation —
written once in Python and executed through interchangeable backends.
Prints the per-cycle residual history, the error against a manufactured
solution, per-phase timing, and a backend comparison.

Run:  python examples/multigrid_3d.py [size]
"""

import sys
import time

import numpy as np

from repro.hpgmg import MultigridSolver, setup_problem

N = int(sys.argv[1]) if len(sys.argv) > 1 else 32

print(f"setting up -∇·(β∇u) = f at {N}^3 with heterogeneous β ...")
level, u_exact = setup_problem(N, ndim=3, coefficients="variable",
                               backend="numpy")

solver = MultigridSolver(level, backend="c", smoother="gsrb",
                         n_pre=2, n_post=2)
print(f"hierarchy: {[lvl.n for lvl in solver.levels]} "
      f"({len(solver.levels)} levels)")

t0 = time.perf_counter()
history = solver.solve(cycles=10)
elapsed = time.perf_counter() - t0

print("\ncycle   residual (L2)   reduction")
for i, r in enumerate(history):
    red = history[i - 1] / r if i else float("nan")
    print(f"{i:5d}   {r:13.3e}   {red:9.1f}x")

err = np.max(np.abs(level.grids["x"][level.interior] - u_exact[level.interior]))
print(f"\nmax error vs manufactured solution: {err:.3e}")
print(f"solve time: {elapsed:.3f}s "
      f"({10 * level.dof / elapsed / 1e6:.2f} MDOF/s over 10 V-cycles)")

print("\nper-operation time:")
for op, t in sorted(solver.timers.items()):
    print(f"  {op:9s} {t.elapsed:7.3f}s  ({t.count} calls)")

# -- the single-source portability claim --------------------------------------
print("\nsame Python source, other backends (2 cycles each):")
for backend in ("numpy", "openmp", "opencl-sim"):
    lvl_b, _ = setup_problem(N, ndim=3, coefficients="variable",
                             backend="numpy")
    s_b = MultigridSolver(lvl_b, backend=backend)
    t0 = time.perf_counter()
    h = s_b.solve(cycles=2)
    dt = time.perf_counter() - t0
    print(f"  {backend:11s} residual {h[-1]:.3e} in {dt:.3f}s "
          f"(incl. JIT)")
