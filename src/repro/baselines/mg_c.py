"""Hand-optimized multigrid driver over the baseline C kernels.

The comparator for Fig.9: a V-cycle solver whose every kernel is the
hand-written C of :mod:`repro.baselines.kernels_c` (Python only
sequences the calls, which costs microseconds against millisecond
kernels — the same division of labour as HPGMG's C driver).  Supports
the paper's configuration: variable-coefficient GSRB smoothing with
2 pre-/2 post-smooths and a smoother-iteration bottom solve.
"""

from __future__ import annotations

from ..hpgmg.level import Level
from .kernels_c import BaselineKernels3D

__all__ = ["BaselineMultigrid3D"]


class BaselineMultigrid3D:
    """Hand-coded V-cycle on a 3-D variable-coefficient hierarchy."""

    def __init__(
        self,
        fine: Level,
        *,
        n_pre: int = 2,
        n_post: int = 2,
        min_coarse: int = 2,
        bottom_smooths: int = 32,
        openmp: bool = False,
    ) -> None:
        if fine.ndim != 3:
            raise ValueError("baseline driver is 3-D only")
        if fine.coefficients != "variable":
            raise ValueError("baseline driver implements the VC operator")
        self.k = BaselineKernels3D(openmp=openmp)
        self.n_pre, self.n_post = n_pre, n_post
        self.bottom_smooths = bottom_smooths
        self.levels: list[Level] = [fine]
        n = fine.n
        while n % 2 == 0 and n // 2 >= min_coarse:
            n //= 2
            self.levels.append(
                Level(n, 3, coefficients="variable", dtype=fine.dtype)
            )

    # -- per-level operations ---------------------------------------------------

    def _smooth(self, lvl: Level, times: int) -> None:
        g = lvl.grids
        invh2 = 1.0 / (lvl.h * lvl.h)
        for _ in range(times):
            for color in (0, 1):
                self.k.bc(g["x"], lvl.n)
                self.k.gsrb_vc(
                    g["x"], g["rhs"], g["beta_0"], g["beta_1"], g["beta_2"],
                    g["lam"], lvl.n, invh2, color,
                )

    def _residual(self, lvl: Level) -> None:
        g = lvl.grids
        self.k.bc(g["x"], lvl.n)
        self.k.residual_vc(
            g["res"], g["x"], g["rhs"], g["beta_0"], g["beta_1"], g["beta_2"],
            lvl.n, 1.0 / (lvl.h * lvl.h),
        )

    # -- cycles -------------------------------------------------------------------

    def v_cycle(self, k: int = 0) -> None:
        if k == len(self.levels) - 1:
            self._smooth(self.levels[k], self.bottom_smooths)
            return
        fine, coarse = self.levels[k], self.levels[k + 1]
        self._smooth(fine, self.n_pre)
        self._residual(fine)
        coarse.zero("x")
        self.k.restrict(coarse.grids["rhs"], fine.grids["res"], coarse.n)
        self.v_cycle(k + 1)
        self.k.interp_pc(fine.grids["x"], coarse.grids["x"], coarse.n)
        self._smooth(fine, self.n_post)

    def residual_norm(self) -> float:
        self._residual(self.levels[0])
        return self.levels[0].norm("res")

    def solve(self, *, cycles: int = 10) -> list[float]:
        history = [self.residual_norm()]
        for _ in range(cycles):
            self.v_cycle(0)
            history.append(self.residual_norm())
        return history
