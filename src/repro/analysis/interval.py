"""Interval (bounding-box) dependence analysis — the strawman.

The paper positions Snowflake's finite-domain Diophantine analysis
against the interval analysis of infinite-domain frameworks like Halide
(SectionIII: "boundary conditions ... do not create false dependencies
which infinite-domain analyses such as Halide's interval analysis would
flag"; SectionVI repeats the point).  To make that comparison concrete
and testable, this module *implements* the interval analysis: accesses
are collapsed to their per-dimension [min, max] bounding boxes and two
accesses "conflict" when the boxes overlap.

It is sound (never misses a real dependence — proven by a property
test against the exact analysis) but weak: it cannot see strides, so
red and black lattices "overlap", and it cannot use domain finiteness
beyond the boxes themselves.  The test suite quantifies exactly which
parallelism only the Diophantine analysis unlocks.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.stencil import Stencil, StencilGroup
from .footprint import Access, StencilAccesses, stencil_accesses

__all__ = [
    "boxes_overlap",
    "interval_conflicts",
    "interval_cross_stencil_dependence",
    "interval_is_parallel_safe",
    "interval_group_dependences",
]


def boxes_overlap(a: Access, b: Access) -> bool:
    """Bounding-box test: strides are forgotten, only extents survive."""
    if a.grid != b.grid:
        return False
    if a.lattice.is_empty() or b.lattice.is_empty():
        return False
    for lo1, hi1, lo2, hi2 in zip(
        a.lattice.lows, a.lattice.highs(), b.lattice.lows, b.lattice.highs()
    ):
        if hi1 < lo2 or hi2 < lo1:
            return False
    return True


def interval_conflicts(a: StencilAccesses, b: StencilAccesses) -> set[str]:
    """RAW/WAR/WAW over bounding boxes (cf. footprint.access_conflicts)."""
    kinds: set[str] = set()
    if any(boxes_overlap(w, r) for w in a.writes for r in b.reads):
        kinds.add("RAW")
    if any(boxes_overlap(r, w) for r in a.reads for w in b.writes):
        kinds.add("WAR")
    if any(boxes_overlap(w1, w2) for w1 in a.writes for w2 in b.writes):
        kinds.add("WAW")
    return kinds


def interval_cross_stencil_dependence(
    first: Stencil, second: Stencil, shapes: Mapping[str, Sequence[int]]
) -> set[str]:
    return interval_conflicts(
        stencil_accesses(first, shapes), stencil_accesses(second, shapes)
    )


def interval_is_parallel_safe(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> bool:
    """Intra-stencil safety under interval reasoning.

    Any overlap between the write box and a *shifted* read box of the
    output grid is treated as a loop-carried hazard (the diagonal
    self-read exemption survives only for the exact zero-offset,
    same-map read, which intervals can still identify).
    """
    acc = stencil_accesses(stencil, shapes)
    om = stencil.output_map
    for read in stencil.flat.reads():
        if read.grid != stencil.output:
            continue
        same_map = (
            tuple(read.scale) == tuple(om.scale)
            and tuple(read.offset) == tuple(om.offset)
        )
        if same_map:
            continue  # pure self-read: visible even to intervals
        from .footprint import map_lattice
        from ..core.validate import iteration_shape

        it_shape = iteration_shape(stencil, shapes)
        for rect in stencil.domain.resolve(it_shape):
            if rect.is_empty():
                continue
            rbox = Access(read.grid, map_lattice(rect, read.scale, read.offset), False)
            for w in acc.writes:
                if boxes_overlap(w, rbox):
                    return False
    # WAW between union boxes, by intervals
    for i in range(len(acc.writes)):
        for j in range(i + 1, len(acc.writes)):
            if boxes_overlap(acc.writes[i], acc.writes[j]):
                return False
    return True


def interval_group_dependences(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> dict[tuple[int, int], set[str]]:
    acc = [stencil_accesses(s, shapes) for s in group]
    out: dict[tuple[int, int], set[str]] = {}
    for i in range(len(group)):
        for j in range(i + 1, len(group)):
            kinds = interval_conflicts(acc[i], acc[j])
            if kinds:
                out[(i, j)] = kinds
    return out
