"""Resilient execution layer: fault injection, fallback, guards.

Three cooperating pieces (each importable on its own):

* :mod:`repro.resilience.faults` — deterministic, site-addressed fault
  injection compiled into the JIT, backend, and communication paths;
* :mod:`repro.resilience.policy` — ordered backend fallback chains with
  bounded retry/backoff and hard compile timeouts
  (``Stencil.compile(..., fallback=("c", "numpy"))``);
* :mod:`repro.resilience.guards` — opt-in runtime guards (NaN/Inf
  output scan, dtype/shape invariants, halo checksums) with
  off/warn/raise severities.

``python -m repro doctor`` runs the toolchain self-check and prints the
degradation report.

:mod:`.policy` is loaded lazily (PEP 562) because it imports the
backend registry; :mod:`.faults`/:mod:`.guards` stay dependency-light
so the JIT and comm layers can import them without cycles.
"""

from .faults import (
    InjectedFault,
    ResilienceWarning,
    arm,
    disarm,
    fault_point,
    inject,
    known_sites,
    reset,
)
from .guards import Guards, GuardViolation, GuardWarning

_POLICY_NAMES = frozenset(
    {
        "BackendChainError",
        "DegradedExecution",
        "ExecutionPolicy",
        "ResilientKernel",
        "compile_resilient",
        "retry_call",
    }
)

__all__ = [
    "InjectedFault",
    "ResilienceWarning",
    "arm",
    "disarm",
    "fault_point",
    "inject",
    "known_sites",
    "reset",
    "Guards",
    "GuardViolation",
    "GuardWarning",
    *sorted(_POLICY_NAMES),
]


def __getattr__(name: str):
    if name in _POLICY_NAMES:
        from . import policy

        return getattr(policy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
