"""Checkpoint/restart for the distributed executor.

A rank crash (the ``comm.rank.crash`` fault, surfacing as
:class:`~repro.dmem.comm.RankFailure`) would otherwise lose every
rank's in-flight sweep.  This module gives
:class:`~repro.dmem.executor.DistributedKernel` the classic
coordinated-checkpoint protocol:

* every ``interval`` sweeps, :class:`Checkpoint` captures a deep copy
  of each rank's local blocks, the sweep counter, and the deterministic
  fault-injection schedule (:func:`repro.resilience.faults.snapshot_arms`
  — this repo's stand-in for fault-RNG state);
* each captured block is fingerprinted with
  :func:`~repro.resilience.guards.halo_crc`, and restore re-verifies
  every fingerprint plus the dtype/shape invariants the runtime guards
  check, so a corrupted checkpoint can never be silently replayed;
* on a :class:`RankFailure`, :class:`RecoveryManager` revives the dead
  ranks, resets the reliable transport (rolling back invalidates every
  in-flight message and sequence number — all ranks restart from one
  consistent cut), restores the snapshot, and replays from the
  checkpointed sweep.  Restarts are bounded by
  :class:`RecoveryPolicy.max_restarts`; exhausting them raises
  :class:`RecoveryExhausted` carrying the failure history.

Because the per-rank kernels are deterministic and the snapshot is the
*complete* rank state, a replayed run is bitwise-identical to one that
never crashed — the acceptance property the dmem fault matrix asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..resilience import faults
from ..resilience.guards import halo_crc

__all__ = [
    "RecoveryPolicy",
    "Checkpoint",
    "CheckpointError",
    "RecoveryExhausted",
    "RecoveryManager",
]


class CheckpointError(RuntimeError):
    """A snapshot failed verification at restore time."""


class RecoveryExhausted(RuntimeError):
    """The bounded restart budget ran out; carries the failure log."""

    def __init__(self, restarts: int, history: list[str]) -> None:
        self.restarts = restarts
        self.history = list(history)
        lines = "\n".join(f"  {h}" for h in self.history)
        super().__init__(
            f"gave up after {restarts} restart(s); failures:\n{lines}"
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a distributed run checkpoints and restarts.

    ``interval`` — sweeps between snapshots (1 = after every sweep);
    ``max_restarts`` — crash recoveries tolerated per ``run()`` before
    :class:`RecoveryExhausted`; ``verify`` — re-verify block CRCs and
    grid invariants on every restore; ``restore_faults`` — also re-arm
    the captured injection schedule on restore (off by default: a
    replayed crash would loop the recovery it triggered).
    """

    interval: int = 1
    max_restarts: int = 3
    verify: bool = True
    restore_faults: bool = False

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


@dataclass
class Checkpoint:
    """One coordinated snapshot of every rank's state."""

    sweep: int
    blocks: list[dict[str, np.ndarray]]
    crcs: list[dict[str, int]]
    fault_arms: dict = field(default_factory=dict)

    @classmethod
    def capture(
        cls, sweep: int, locals_: list[dict[str, np.ndarray]]
    ) -> "Checkpoint":
        blocks = [
            {g: np.array(a, copy=True) for g, a in rank.items()}
            for rank in locals_
        ]
        crcs = [
            {g: halo_crc(a) for g, a in rank.items()} for rank in blocks
        ]
        telemetry.count("dmem.recovery.checkpoints")
        telemetry.event("dmem.checkpoint", sweep=sweep, ranks=len(blocks))
        telemetry.tracing.instant(
            "recovery.checkpoint", cat="dmem", sweep=sweep,
            ranks=len(blocks),
        )
        return cls(
            sweep=sweep, blocks=blocks, crcs=crcs,
            fault_arms=faults.snapshot_arms(),
        )

    def verify(self) -> None:
        """Re-fingerprint every captured block; a mismatch means the
        snapshot itself was corrupted since capture."""
        for r, (rank, want) in enumerate(zip(self.blocks, self.crcs)):
            for g, a in rank.items():
                got = halo_crc(a)
                if got != want[g]:
                    raise CheckpointError(
                        f"checkpoint at sweep {self.sweep}: rank {r} "
                        f"grid {g!r} failed CRC "
                        f"({want[g]:#010x} -> {got:#010x}) — snapshot "
                        "corrupted, refusing to restore"
                    )

    def restore_into(
        self,
        locals_: list[dict[str, np.ndarray]],
        *,
        verify: bool = True,
    ) -> None:
        """Copy the snapshot back over the live rank state.

        With ``verify`` (the default) the block CRCs are re-checked
        first, and every target grid must still satisfy the dtype/shape
        invariants the runtime guards watch — a restore may never
        scribble a differently-shaped timeline over live arrays.
        """
        if verify:
            self.verify()
        if len(locals_) != len(self.blocks):
            raise CheckpointError(
                f"checkpoint spans {len(self.blocks)} rank(s), live "
                f"state has {len(locals_)}"
            )
        for r, (live, snap) in enumerate(zip(locals_, self.blocks)):
            if set(live) != set(snap):
                raise CheckpointError(
                    f"rank {r}: grid set changed since checkpoint "
                    f"({sorted(snap)} -> {sorted(live)})"
                )
            for g, a in snap.items():
                tgt = live[g]
                if verify and (tgt.dtype != a.dtype or tgt.shape != a.shape):
                    raise CheckpointError(
                        f"rank {r} grid {g!r} invariants changed since "
                        f"checkpoint: dtype {a.dtype}->{tgt.dtype}, "
                        f"shape {a.shape}->{tgt.shape}"
                    )
                tgt[...] = a


class RecoveryManager:
    """Drives a :class:`DistributedKernel`'s sweeps under a policy.

    Owned by :meth:`DistributedKernel.run`; kept separate so the
    executor's hot path stays free of recovery bookkeeping.
    """

    def __init__(self, kernel, policy: RecoveryPolicy) -> None:
        self.kernel = kernel
        self.policy = policy
        self.restarts = 0
        self.history: list[str] = []

    def run(self, times: int) -> None:
        from .comm import RankFailure

        dk = self.kernel
        locals_ = dk._locals
        ckpt = Checkpoint.capture(0, locals_)
        sweep = 0
        while sweep < times:
            try:
                dk._sweep(locals_)
            except RankFailure as f:
                self.restarts += 1
                self.history.append(
                    f"sweep {sweep + 1}: {f} (restored to sweep "
                    f"{ckpt.sweep})"
                )
                telemetry.count("dmem.recovery.rank_failures")
                telemetry.event(
                    "dmem.rank.failure",
                    sweep=sweep + 1, rank=f.rank,
                    restored_to=ckpt.sweep, restart=self.restarts,
                )
                if self.restarts > self.policy.max_restarts:
                    raise RecoveryExhausted(
                        self.restarts - 1, self.history
                    ) from f
                self._restore(ckpt)
                sweep = ckpt.sweep
                continue
            sweep += 1
            if sweep < times and sweep % self.policy.interval == 0:
                ckpt = Checkpoint.capture(sweep, locals_)

    def _restore(self, ckpt: Checkpoint) -> None:
        dk = self.kernel
        with telemetry.tracing.span(
            "recovery.restore", cat="dmem", sweep=ckpt.sweep,
            restart=self.restarts,
        ):
            comm = dk.comms[0]
            for r in sorted(comm.dead_ranks()):
                comm.revive(r)
            purged = dk.transport[0].reset()
            ckpt.restore_into(dk._locals, verify=self.policy.verify)
            if self.policy.restore_faults:
                faults.restore_arms(ckpt.fault_arms)
            comm.stats.restores += 1
            telemetry.count("dmem.restores")
            telemetry.event(
                "dmem.restore",
                sweep=ckpt.sweep, restart=self.restarts,
                purged_messages=purged,
            )
            telemetry.tracing.instant(
                "recovery.restored", cat="dmem", sweep=ckpt.sweep,
                purged_messages=purged,
            )
