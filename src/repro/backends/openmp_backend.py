"""C + OpenMP micro-compiler (paper SectionIV-A).

Scheduling follows the paper's design literally:

* each stencil becomes an **OpenMP task**, with larger stencils split
  into sub-tasks by tiling the outermost free loop;
* the dependence analysis groups stencils into **phases** using the
  greedy policy — a barrier (``taskwait``) is inserted only when an
  upcoming stencil consumes what an in-flight one produced;
* **multicolor reordering** and arbitrary-dimension **tiling** are
  available as compile options (both on by default / tunable), and the
  tile size is an explicit knob so it can be autotuned
  (:mod:`repro.tuning.autotune`).
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.dag import plan
from ..core.stencil import StencilGroup
from .base import register_backend
from .c_backend import CBackend
from .codegen_c import (
    C_PREAMBLE,
    CodegenContext,
    StencilLoops,
    ctype_for,
)

__all__ = ["OpenMPBackend", "generate_openmp_source"]


def generate_openmp_source(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    dtype,
    *,
    tile: int | None = 8,
    multicolor: bool = True,
    schedule: str = "greedy",
    fuse: bool = False,
    func_name: str = "sf_kernel",
) -> str:
    """Render the group as a task-parallel OpenMP translation unit.

    With ``fuse=True``, fusion chains (independent adjacent stencils
    sharing a domain) are emitted as a single task-tiled nest; chains
    never straddle a barrier because greedy phases break exactly at
    dependences, and chain members are dependence-free by construction.
    """
    from .c_backend import fusion_chains

    ctx = CodegenContext(group, shapes, ctype_for(dtype))
    exec_plan = plan(group, shapes, policy=schedule)
    norm_shapes = {g: tuple(int(x) for x in shapes[g]) for g in shapes}
    chains = (
        fusion_chains(group, norm_shapes)
        if fuse
        else [[i] for i in range(len(group))]
    )
    chain_of_head = {c[0]: c for c in chains}
    non_heads = {i for c in chains for i in c[1:]}

    lines: list[str] = [C_PREAMBLE, "#include <omp.h>"]
    lines.append(
        f"void {func_name}({ctx.ctype}** grids, const double* params)"
    )
    lines.append("{")
    for l in ctx.prologue():
        lines.append("  " + l)

    # Pre-plan snapshots so allocation happens once, outside the region.
    snap_names: dict[int, str] = {}
    loops_for: dict[int, StencilLoops] = {}
    for si, stencil in enumerate(group):
        if si in non_heads:
            continue  # emitted inside its chain head's nest
        fused = [group[i] for i in chain_of_head.get(si, [si])[1:]]
        loops = StencilLoops(
            ctx, stencil, tile=tile, multicolor=multicolor, fused_with=fused
        )
        if not fused and loops.needs_snapshot():
            snap = f"snap_{si}"
            snap_names[si] = snap
            loops = StencilLoops(
                ctx, stencil, tile=tile, multicolor=multicolor,
                snapshot_name=snap,
            )
        loops_for[si] = loops
    for si, snap in snap_names.items():
        g = group[si].output
        n = ctx.grid_size(g)
        lines.append(
            f"  {ctx.ctype}* {snap} = ({ctx.ctype}*)malloc("
            f"{n} * sizeof({ctx.ctype}));"
        )

    lines.append("  #pragma omp parallel")
    lines.append("  #pragma omp single")
    lines.append("  {")
    for pi, phase in enumerate(exec_plan.phases):
        lines.append(f"    /* phase {pi} */")
        # Fill snapshots serially before spawning the phase's tasks.
        for si in phase:
            snap = snap_names.get(si)
            if snap is not None:
                g = group[si].output
                n = ctx.grid_size(g)
                src = ctx.grid_cname[g]
                lines.append(
                    f"    memcpy({snap}, {src}, {n} * sizeof({ctx.ctype}));"
                )
        for si in phase:
            if si in non_heads:
                continue
            stencil = group[si]
            lines.append(f"    /* stencil {si}: {stencil.name} */")
            # Unsafe in-place stencils were given a snapshot above, which
            # restores gather semantics — so every stencil may be tiled
            # into concurrent tasks.
            for l in loops_for[si].emit(task_pragma="#pragma omp task"):
                lines.append("    " + l)
        lines.append("    #pragma omp taskwait")
    lines.append("  }")
    for snap in snap_names.values():
        lines.append(f"  free({snap});")
    lines.append("}")
    return "\n".join(lines) + "\n"


class OpenMPBackend(CBackend):
    """The ``openmp`` micro-compiler.

    Options: ``tile`` (task granularity on the outermost loop, default
    8 planes), ``multicolor`` (default True), ``schedule`` — one of
    ``greedy`` (the paper's policy), ``wavefront``, ``serial``.
    """

    name = "openmp"
    _openmp = True

    _DEFAULTS = {
        "tile": 8, "multicolor": True, "schedule": "greedy", "fuse": False,
    }

    def generate(self, group, shapes, dtype, **knobs) -> str:
        return generate_openmp_source(group, shapes, dtype, **knobs)


register_backend(OpenMPBackend(), "omp")
