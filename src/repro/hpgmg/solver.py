"""Geometric multigrid solver built entirely from Snowflake stencils.

The HPGMG-style driver of the paper's SectionV: V-cycles (and an FMG
F-cycle) over a hierarchy of levels, with GSRB (default), weighted
Jacobi, or Chebyshev-polynomial smoothing, DSL-generated residual,
restriction, interpolation, and boundary kernels, and a
smoother-iteration bottom solve.  Every flop of the solve runs through
a micro-compiler backend chosen at construction — switching between
``numpy``/``c``/``openmp``/``opencl-sim`` is a constructor argument, not
a code change (the paper's single-source performance portability).
"""

from __future__ import annotations

from typing import Callable

from ..core.stencil import StencilGroup
from ..util.timing import Timer
from .level import Level
from .operators import (
    boundary_stencils,
    cc_diagonal,
    interpolation_linear_group,
    interpolation_pc_group,
    jacobi_stencil,
    residual_group,
    restriction_stencil,
    smooth_group,
)
from .problem import operator_expr

__all__ = ["MultigridSolver"]


def _chebyshev_weights(
    degree: int = 2, lo: float = 0.3, hi: float = 2.0
) -> list[float]:
    """Inverse Chebyshev roots over ``[lo, hi]`` — the classic step sizes
    for a degree-``degree`` polynomial smoother on a diagonally scaled
    operator whose smoothing band is ``[lo, hi]`` (for D⁻¹A the full
    spectrum sits in (0, 2))."""
    import math

    mid, rad = 0.5 * (hi + lo), 0.5 * (hi - lo)
    return [
        1.0 / (mid + rad * math.cos(math.pi * (2 * i + 1) / (2 * degree)))
        for i in range(degree)
    ]


class MultigridSolver:
    """V-cycle / F-cycle geometric multigrid on a level hierarchy.

    Parameters mirror the paper's experimental setup: ``n_pre`` /
    ``n_post`` GSRB smooths (2/2 in SectionV-A, i.e. 4 stencil sweeps
    each), restriction by cell averaging, correction interpolation
    (piecewise constant by default, linear available), and a
    fixed-iteration smoother bottom solve.
    """

    def __init__(
        self,
        fine: Level,
        *,
        backend: str = "numpy",
        smoother: str = "gsrb",
        n_pre: int = 2,
        n_post: int = 2,
        interpolation: str = "pc",
        min_coarse: int = 2,
        bottom_smooths: int = 32,
        backend_options: dict | None = None,
    ) -> None:
        if smoother not in ("gsrb", "jacobi", "chebyshev"):
            raise ValueError(f"unknown smoother {smoother!r}")
        if interpolation not in ("pc", "linear"):
            raise ValueError(f"unknown interpolation {interpolation!r}")
        self.backend = backend
        self.backend_options = dict(backend_options or {})
        self.smoother = smoother
        self.n_pre = n_pre
        self.n_post = n_post
        self.interpolation = interpolation
        self.bottom_smooths = bottom_smooths
        self.timers: dict[str, Timer] = {
            k: Timer()
            for k in ("smooth", "residual", "restrict", "interp", "bottom")
        }

        # -- hierarchy -----------------------------------------------------
        self.levels: list[Level] = [fine]
        n = fine.n
        while n % 2 == 0 and n // 2 >= min_coarse:
            n //= 2
            self.levels.append(
                Level(
                    n,
                    fine.ndim,
                    coefficients=fine.coefficients,
                    dtype=fine.dtype,
                )
            )

        # -- compiled kernels ------------------------------------------------
        self._smooth: list[Callable] = []
        self._residual: list[Callable] = []
        self._restrict: list[Callable] = []   # [k] : level k -> k+1
        self._interp: list[Callable] = []     # [k] : level k+1 -> k (add)
        self._interp_full: list[Callable] = []  # F-cycle: overwrite interp
        self._restrict_rhs: list[Callable] = []
        for k, level in enumerate(self.levels):
            self._smooth.append(self._build_smoother(level))
            self._residual.append(self._build_residual(level))
        for k in range(len(self.levels) - 1):
            fine_l, coarse_l = self.levels[k], self.levels[k + 1]
            self._restrict.append(
                self._compile_pair(
                    StencilGroup([restriction_stencil(fine_l.ndim)], "restrict"),
                    {"res": fine_l, "coarse_rhs": coarse_l},
                    {"res": "res", "coarse_rhs": "rhs"},
                )
            )
            self._restrict_rhs.append(
                self._compile_pair(
                    StencilGroup(
                        [restriction_stencil(fine_l.ndim, fine="rhs")],
                        "restrict_rhs",
                    ),
                    {"rhs": fine_l, "coarse_rhs": coarse_l},
                    {"rhs": "rhs", "coarse_rhs": "rhs"},
                )
            )
            interp_builder = (
                interpolation_pc_group
                if self.interpolation == "pc"
                else interpolation_linear_group
            )
            bc_coarse = boundary_stencils(fine_l.ndim, "coarse_x")
            self._interp.append(
                self._compile_pair(
                    StencilGroup(
                        bc_coarse + list(interp_builder(fine_l.ndim, add=True)),
                        "interp",
                    ),
                    {"coarse_x": coarse_l, "x": fine_l},
                    {"coarse_x": "x", "x": "x"},
                )
            )
            self._interp_full.append(
                self._compile_pair(
                    StencilGroup(
                        bc_coarse
                        + list(
                            interpolation_linear_group(fine_l.ndim, add=False)
                        ),
                        "interp_full",
                    ),
                    {"coarse_x": coarse_l, "x": fine_l},
                    {"coarse_x": "x", "x": "x"},
                )
            )

    # -- kernel construction ---------------------------------------------------

    def _lam_of(self, level: Level):
        if level.coefficients == "constant":
            return 1.0 / cc_diagonal(level.ndim, level.h)
        return "lam"

    def _compile(self, group: StencilGroup, level: Level) -> Callable:
        shapes = {g: level.shape for g in group.grids()}
        kernel = group.compile(
            backend=self.backend, shapes=shapes, dtype=level.dtype,
            **self.backend_options,
        )
        grids = {g: level.grids[g] for g in group.grids()}

        def run(**params):
            kernel(**grids, **params)

        return run

    def _compile_pair(
        self,
        group: StencilGroup,
        level_of: dict[str, Level],
        grid_of: dict[str, str],
    ) -> Callable:
        shapes = {g: level_of[g].shape for g in group.grids()}
        kernel = group.compile(
            backend=self.backend, shapes=shapes,
            dtype=self.levels[0].dtype, **self.backend_options,
        )
        grids = {g: level_of[g].grids[grid_of[g]] for g in group.grids()}

        def run(**params):
            kernel(**grids, **params)

        return run

    def _build_smoother(self, level: Level) -> Callable:
        ndim = level.ndim
        Ax = operator_expr(level)
        lam = self._lam_of(level)
        if self.smoother == "gsrb":
            group = smooth_group(ndim, Ax, lam=lam, n_smooths=1)
            return self._compile(group, level)
        if self.smoother == "jacobi":
            # One "smooth" = two weighted-Jacobi ping-pong applications so
            # the result lands back in x.
            bc_x = boundary_stencils(ndim, "x")
            bc_t = boundary_stencils(ndim, "tmp")
            Ax_t = operator_expr(level, grid="tmp")
            fwd = jacobi_stencil(ndim, Ax, grid="x", out="tmp", lam=lam)
            bwd = jacobi_stencil(ndim, Ax_t, grid="tmp", out="x", lam=lam,
                                 rhs="rhs")
            group = StencilGroup(
                bc_x + [fwd] + bc_t + [bwd], name="jacobi_smooth"
            )
            return self._compile(group, level)
        # Chebyshev polynomial smoother: two Jacobi-like half-steps whose
        # step weights are runtime Params set to the inverse Chebyshev
        # roots over the (diagonally scaled) smoothing band — no
        # recompilation when the weights change.
        bc_x = boundary_stencils(ndim, "x")
        bc_t = boundary_stencils(ndim, "tmp")
        Ax_t = operator_expr(level, grid="tmp")
        fwd = self._cheby_stencil(ndim, Ax, "x", "tmp", lam, "cheb_w0")
        bwd = self._cheby_stencil(ndim, Ax_t, "tmp", "x", lam, "cheb_w1")
        group = StencilGroup(bc_x + [fwd] + bc_t + [bwd], name="cheby_smooth")
        inner = self._compile(group, level)
        ws = _chebyshev_weights(degree=2)

        def run():
            inner(cheb_w0=ws[0], cheb_w1=ws[1])

        return run

    @staticmethod
    def _cheby_stencil(ndim, Ax, grid, out, lam, wname):
        from ..core.components import Component
        from ..core.expr import Constant, Param
        from ..core.weights import SparseArray
        from .operators import interior

        center = (0,) * ndim
        x = Component(grid, SparseArray({center: 1.0}))
        b = Component("rhs", SparseArray({center: 1.0}))
        lam_e = (
            Component(lam, SparseArray({center: 1.0}))
            if isinstance(lam, str)
            else Constant(float(lam))
        )
        from ..core.stencil import Stencil

        body = x + Param(wname) * lam_e * (b - Ax)
        return Stencil(body, out, interior(ndim), name=f"cheby_{out}")

    # -- multigrid cycles --------------------------------------------------------

    def smooth(self, k: int, times: int = 1) -> None:
        with self.timers["smooth"]:
            for _ in range(times):
                self._smooth[k]()

    def residual(self, k: int) -> None:
        with self.timers["residual"]:
            self._residual[k]()

    def _build_residual(self, level: Level) -> Callable:
        group = residual_group(level.ndim, operator_expr(level))
        return self._compile(group, level)

    def restrict_residual(self, k: int) -> None:
        with self.timers["restrict"]:
            self._restrict[k]()

    def interpolate_correction(self, k: int) -> None:
        with self.timers["interp"]:
            self._interp[k]()

    def bottom_solve(self) -> None:
        with self.timers["bottom"]:
            for _ in range(self.bottom_smooths):
                self._smooth[-1]()

    def v_cycle(self, k: int = 0) -> None:
        """Standard V(n_pre, n_post) cycle starting at level ``k``."""
        if k == len(self.levels) - 1:
            self.bottom_solve()
            return
        self.smooth(k, self.n_pre)
        self.residual(k)
        coarse = self.levels[k + 1]
        coarse.zero("x")
        self.restrict_residual(k)
        self.v_cycle(k + 1)
        self.interpolate_correction(k)
        self.smooth(k, self.n_post)

    def f_cycle(self) -> None:
        """Full multigrid (F-cycle): coarse-to-fine nested V-cycles."""
        # Push the rhs down the hierarchy.
        for k in range(len(self.levels) - 1):
            self._restrict_rhs[k]()
        for lvl in self.levels[1:]:
            lvl.zero("x")
        self.bottom_solve()
        for k in range(len(self.levels) - 2, -1, -1):
            # initial guess: full-weight interpolation of the coarse solve
            self._interp_full[k]()
            self.v_cycle(k)

    # -- driver -----------------------------------------------------------------

    def residual_norm(self, kind: str = "l2") -> float:
        self.residual(0)
        return self.levels[0].norm("res", kind)

    def solve(
        self,
        *,
        cycles: int = 10,
        rtol: float | None = None,
        cycle: str = "v",
    ) -> list[float]:
        """Run ``cycles`` V-cycles (paper SectionV-A uses 10).

        Returns the residual-norm history ``[r0, r1, ...]``; stops early
        when ``r_k <= rtol * r0`` if ``rtol`` is given.
        """
        if cycle not in ("v", "f"):
            raise ValueError(f"unknown cycle type {cycle!r}")
        history = [self.residual_norm()]
        for c in range(cycles):
            if cycle == "f" and c == 0:
                # FMG is a one-shot accelerator: the F-cycle builds the
                # initial fine solution; subsequent cycles are V-cycles.
                self.f_cycle()
            else:
                self.v_cycle(0)
            history.append(self.residual_norm())
            if rtol is not None and history[-1] <= rtol * history[0]:
                break
        return history
