"""Analytic cost model: the paper's 24/40/64 bytes/point, reproduced exactly."""

import pytest

from repro.bench import operator_cost, paper_operators
from repro.core.domains import RectDomain
from repro.core.expr import GridRead
from repro.core.stencil import Stencil
from repro.kernel import kernel_cost
from repro.kernel.cost import WORD_BYTES
from repro.machine.roofline import PAPER_BYTES_PER_STENCIL, bytes_per_point


@pytest.fixture(scope="module")
def operators():
    return paper_operators(8)


def test_paper_constants_reproduced_exactly(operators):
    """Acceptance: 24, 40, 64 — exact equality, not approx."""
    costs = {
        name: kernel_cost(st).bytes_per_point
        for name, st in operators.items()
    }
    assert costs == {"cc_7pt": 24.0, "cc_jacobi": 40.0, "vc_gsrb": 64.0}
    assert costs == PAPER_BYTES_PER_STENCIL


def test_operator_cost_asserts_against_drift(operators):
    for name, st in operators.items():
        cost = operator_cost(name, st)
        assert cost.bytes_per_point == PAPER_BYTES_PER_STENCIL[name]
    # a mismatched pairing must trip the drift assertion
    with pytest.raises(AssertionError, match="drifted"):
        operator_cost("cc_7pt", operators["vc_gsrb"])


def test_roofline_delegates_to_kernel_cost(operators):
    for st in operators.values():
        assert bytes_per_point(st) == kernel_cost(st).bytes_per_point


def test_flops_are_positive_and_fma_counts_two(operators):
    # cc_7pt: 7 loads combined with adds/muls — at least one op per load
    cost = kernel_cost(operators["cc_7pt"])
    assert cost.flops_per_point >= 7
    assert cost.arithmetic_intensity == pytest.approx(
        cost.flops_per_point / cost.bytes_per_point
    )


def test_write_allocate_convention():
    # out-of-place single-read stencil: read + write + write-allocate
    s = Stencil(GridRead("u", (0, 0)), "out", RectDomain((1, 1), (-1, -1)))
    wa = kernel_cost(s, write_allocate=True)
    nowa = kernel_cost(s, write_allocate=False)
    assert wa.bytes_per_point == 3 * WORD_BYTES
    assert nowa.bytes_per_point == 2 * WORD_BYTES
    assert wa.write_allocate and not nowa.write_allocate


def test_inplace_stencil_pays_no_write_allocate():
    # GSRB-style: the output grid is also read, so the written line is
    # already resident — write-allocate must not double-charge it
    s = Stencil(
        GridRead("x", (1, 0)) + GridRead("x", (-1, 0)),
        "x",
        RectDomain((1, 1), (-1, -1)),
    )
    cost = kernel_cost(s)
    assert cost.bytes_per_point == 2 * WORD_BYTES  # read x + write x


def test_cost_to_dict_round_trip(operators):
    d = kernel_cost(operators["cc_jacobi"]).to_dict()
    for key in (
        "flops_per_point",
        "read_grids",
        "loads_per_point",
        "bytes_per_point",
        "arithmetic_intensity",
        "write_allocate",
    ):
        assert key in d
