"""Host-side execution of an :class:`OpenCLProgram` on the simulator.

Plays the role of the OpenCL host API: builds the program (via the gcc
JIT), allocates device buffers (numpy arrays shared with the caller —
a zero-copy "device"), and replays the host plan ops in order, exactly
like an in-order command queue: buffer copies, kernel launches, queue
barriers.
"""

from __future__ import annotations

import ctypes
from typing import Callable, Mapping

import numpy as np

from ..backends.jit import compile_and_load
from ..backends.opencl_backend import (
    Barrier,
    CopyBuffer,
    KernelLaunch,
    OpenCLProgram,
)
from ..backends.codegen_c import ctype_for
from ..core.stencil import StencilGroup
from .translate import translation_unit

__all__ = ["build_executor"]


def build_executor(
    program: OpenCLProgram,
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    dtype,
) -> Callable:
    ctype = ctype_for(dtype)
    npdtype = np.dtype(dtype)
    src = translation_unit(program, ctype)
    lib = compile_and_load(src)

    drivers: dict[str, ctypes._CFuncPtr] = {}
    for kname in program.kernel_ranges:
        fn = getattr(lib, f"drive_{kname}")
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_size_t),
        ]
        fn.restype = None
        drivers[kname] = fn

    grid_names = [b for b in program.buffer_order if b not in program.snap_of]
    snap_names = [b for b in program.buffer_order if b in program.snap_of]
    # Persistent "device-side" scratch for snapshot buffers.
    snap_arrays = {
        s: np.empty(shapes[program.snap_of[s]], dtype=npdtype)
        for s in snap_names
    }
    buf_index = {b: i for i, b in enumerate(program.buffer_order)}
    gshapes = {g: tuple(int(x) for x in shapes[g]) for g in grid_names}

    def impl(arrays: Mapping[str, np.ndarray], params: Mapping[str, float]):
        ptrs = (ctypes.c_void_p * len(program.buffer_order))()
        for g in grid_names:
            a = arrays[g]
            if a.dtype != npdtype:
                raise TypeError(
                    f"grid {g!r} has dtype {a.dtype}, program built for {npdtype}"
                )
            if tuple(a.shape) != gshapes[g]:
                raise ValueError(
                    f"grid {g!r} has shape {a.shape}, program built for {gshapes[g]}"
                )
            if not a.flags["C_CONTIGUOUS"]:
                raise ValueError(f"grid {g!r} must be C-contiguous")
            ptrs[buf_index[g]] = a.ctypes.data
        for s in snap_names:
            ptrs[buf_index[s]] = snap_arrays[s].ctypes.data
        pvals = (ctypes.c_double * max(len(program.param_order), 1))(
            *[float(params[p]) for p in program.param_order]
        )
        for op in program.ops:
            if isinstance(op, CopyBuffer):
                np.copyto(snap_arrays[op.snap], arrays[op.grid])
            elif isinstance(op, KernelLaunch):
                gsize = (ctypes.c_size_t * 3)(1, 1, 1)
                for d, n in enumerate(op.global_size):
                    gsize[d] = n
                drivers[op.kernel](ptrs, pvals, gsize)
            elif isinstance(op, Barrier):
                pass  # in-order serial queue: barriers are implicit
            else:  # pragma: no cover - plan is produced by our own codegen
                raise TypeError(f"unknown host op {op!r}")

    return impl
