"""Flattening: lower arbitrary stencil expressions to canonical form.

Every Snowflake expression — arbitrarily nested components, variable
coefficients, arithmetic — lowers to the *canonical flat form*

    result(i) = sum_k  c_k * (prod params) / (prod params) * prod_j grid_j[S_j * i + O_j]

i.e. a sum of terms, each a scalar coefficient times a product of grid
reads with affine index maps.  This form is the narrow interface between
the platform-agnostic frontend and the per-platform micro-compilers
(paper SectionIV): the analysis engine and every backend consume only
:class:`FlatStencil`, never raw expression trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .components import Component
from .expr import BinOp, Constant, Expr, GridRead, Neg, Param

__all__ = ["FlatTerm", "FlatStencil", "flatten_expr", "term_scalar"]


@dataclass(frozen=True)
class FlatTerm:
    """One product term: ``coeff * prod(params) / prod(denom_params) * prod(reads)``."""

    coeff: float
    params: tuple[str, ...]        # sorted, with multiplicity
    denom_params: tuple[str, ...]  # sorted, with multiplicity
    reads: tuple[GridRead, ...]    # sorted by signature, with multiplicity

    def key(self) -> tuple:
        return (self.params, self.denom_params, self.reads)

    def signature(self) -> str:
        bits = [repr(self.coeff)]
        bits += list(self.params)
        if self.denom_params:
            bits.append("/" + "*".join(self.denom_params))
        bits += [r.signature() for r in self.reads]
        return "*".join(bits)

    def degree(self) -> int:
        """Number of grid-read factors (1 = linear stencil term)."""
        return len(self.reads)


def term_scalar(term: FlatTerm, params) -> float:
    """The scalar (grid-independent) factor of one term.

    Multiplies the numerator params then divides the denominator params
    in sorted order — the exact operation sequence of the historical
    term-by-term interpreters, shared here so the legacy python and
    numpy paths evaluate it one way (the kernel IR hoists the same
    computation to a depth-0 binding).
    """
    v = term.coeff
    for p in term.params:
        v *= params[p]
    for p in term.denom_params:
        v /= params[p]
    return v


def _term(coeff: float = 1.0, params=(), denom=(), reads=()) -> FlatTerm:
    return FlatTerm(
        float(coeff),
        tuple(sorted(params)),
        tuple(sorted(denom)),
        tuple(sorted(reads, key=lambda r: r.signature())),
    )


def _merge(terms: list[FlatTerm]) -> list[FlatTerm]:
    acc: dict[tuple, float] = {}
    order: list[tuple] = []
    reps: dict[tuple, FlatTerm] = {}
    for t in terms:
        k = t.key()
        if k not in acc:
            acc[k] = 0.0
            order.append(k)
            reps[k] = t
        acc[k] += t.coeff
    out = []
    for k in order:
        c = acc[k]
        if c != 0.0:
            r = reps[k]
            out.append(FlatTerm(c, r.params, r.denom_params, r.reads))
    return out


def _mul(a: list[FlatTerm], b: list[FlatTerm]) -> list[FlatTerm]:
    out = []
    for ta in a:
        for tb in b:
            out.append(
                _term(
                    ta.coeff * tb.coeff,
                    ta.params + tb.params,
                    ta.denom_params + tb.denom_params,
                    ta.reads + tb.reads,
                )
            )
    return _merge(out)


def _neg(a: list[FlatTerm]) -> list[FlatTerm]:
    return [FlatTerm(-t.coeff, t.params, t.denom_params, t.reads) for t in a]


def _flatten(expr: Expr, ndim: int | None) -> list[FlatTerm]:
    if isinstance(expr, Constant):
        return [] if expr.value == 0.0 else [_term(expr.value)]
    if isinstance(expr, Param):
        return [_term(1.0, params=(expr.name,))]
    if isinstance(expr, GridRead):
        if ndim is not None and expr.ndim != ndim:
            raise ValueError(
                f"read of {expr.grid!r} is {expr.ndim}-D, expected {ndim}-D"
            )
        return [_term(1.0, reads=(expr,))]
    if isinstance(expr, Component):
        if ndim is not None and expr.ndim != ndim:
            raise ValueError(
                f"component on {expr.grid!r} is {expr.ndim}-D, expected {ndim}-D"
            )
        out: list[FlatTerm] = []
        for off, w in expr.weights:
            read = GridRead(expr.grid, off, expr.scale)
            if isinstance(w, Expr):
                # Weight expression evaluated at the shifted point
                # scale*i + off: compose every read inside it.
                inner = _flatten(w, ndim)
                inner = [
                    FlatTerm(
                        t.coeff,
                        t.params,
                        t.denom_params,
                        tuple(
                            sorted(
                                (r.compose(expr.scale, off) for r in t.reads),
                                key=lambda r: r.signature(),
                            )
                        ),
                    )
                    for t in inner
                ]
            else:
                inner = [_term(float(w))]
            out.extend(_mul(inner, [_term(1.0, reads=(read,))]))
        return _merge(out)
    if isinstance(expr, Neg):
        return _neg(_flatten(expr.operand, ndim))
    if isinstance(expr, BinOp):
        lhs = _flatten(expr.lhs, ndim)
        rhs = _flatten(expr.rhs, ndim)
        if expr.op == "+":
            return _merge(lhs + rhs)
        if expr.op == "-":
            return _merge(lhs + _neg(rhs))
        if expr.op == "*":
            return _mul(lhs, rhs)
        if expr.op == "/":
            if not rhs:
                raise ZeroDivisionError("stencil expression divides by zero")
            if len(rhs) != 1 or rhs[0].reads:
                raise ValueError(
                    "division is only supported by scalar expressions "
                    "(constants and params) — divide-by-grid is not a "
                    "linear stencil operation"
                )
            d = rhs[0]
            if d.coeff == 0.0:
                raise ZeroDivisionError("stencil expression divides by zero")
            return [
                _term(
                    t.coeff / d.coeff,
                    t.params + d.denom_params,
                    t.denom_params + d.params,
                    t.reads,
                )
                for t in lhs
            ]
        raise AssertionError(expr.op)
    raise TypeError(f"cannot flatten {type(expr).__name__}")


class FlatStencil:
    """The canonical lowered form of one stencil body.

    Immutable; provides the queries the analysis and backends need:
    reads grouped by grid, offset radius, traffic estimates, and a stable
    ``signature`` for JIT caching.
    """

    def __init__(self, terms: Sequence[FlatTerm], ndim: int) -> None:
        self.terms: tuple[FlatTerm, ...] = tuple(terms)
        self.ndim = int(ndim)
        for t in self.terms:
            for r in t.reads:
                if r.ndim != self.ndim:
                    raise ValueError("mixed-dimensionality reads")

    # -- queries -------------------------------------------------------------

    def grids(self) -> set[str]:
        return {r.grid for t in self.terms for r in t.reads}

    def params(self) -> set[str]:
        out: set[str] = set()
        for t in self.terms:
            out.update(t.params)
            out.update(t.denom_params)
        return out

    def reads(self) -> list[GridRead]:
        """All distinct reads, sorted."""
        seen = {r for t in self.terms for r in t.reads}
        return sorted(seen, key=lambda r: r.signature())

    def reads_of(self, grid: str) -> list[GridRead]:
        return [r for r in self.reads() if r.grid == grid]

    def radius(self) -> int:
        """Max Chebyshev offset over unit-scale reads (stencil reach)."""
        r = 0
        for read in self.reads():
            r = max(r, max((abs(o) for o in read.offset), default=0))
        return r

    def is_linear(self) -> bool:
        return all(t.degree() <= 1 for t in self.terms)

    def max_degree(self) -> int:
        return max((t.degree() for t in self.terms), default=0)

    def signature(self) -> str:
        return f"F{self.ndim}d(" + "+".join(t.signature() for t in self.terms) + ")"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FlatStencil)
            and other.ndim == self.ndim
            and other.terms == self.terms
        )

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover
        return self.signature()


def flatten_expr(expr: Expr, ndim: int | None = None) -> FlatStencil:
    """Lower ``expr`` to :class:`FlatStencil`.

    ``ndim`` may be omitted when the expression contains at least one grid
    read (it is then inferred and cross-checked).
    """
    if ndim is None:
        for node in _iter_reads(expr):
            ndim = node.ndim
            break
        if ndim is None:
            raise ValueError("cannot infer dimensionality of a scalar expression")
    terms = _flatten(expr, ndim)
    return FlatStencil(terms, ndim)


def _iter_reads(expr: Expr):
    from .expr import walk

    for node in walk(expr):
        if isinstance(node, GridRead):
            yield node
        elif isinstance(node, Component):
            yield GridRead(node.grid, (0,) * node.ndim, node.scale)
