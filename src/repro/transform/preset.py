"""Presets: render a :class:`ScheduleOptions` record as a pipeline.

This is what makes ``ScheduleOptions`` a *thin veneer* over the
transform API: :func:`repro.schedule.build_schedule` lowers the
dependence plan to a base schedule and applies exactly this pipeline.
The transform order is fixed so the preset reproduces the historical
single-pass lowering bit-for-bit (fusion before sweep recognition keeps
the evidence order ``parallel, snapshot?, fuse?, multicolor?``; knob
rewrites after both; temporal blocking last, over the final step
structure).
"""

from __future__ import annotations

from ..schedule.options import ScheduleOptions
from .base import Pipeline
from .schedule_tx import Block, ColorSweep, Fuse, Tile, TimeTile, Unroll

__all__ = ["preset_pipeline"]


def preset_pipeline(options: ScheduleOptions) -> Pipeline:
    """The transform pipeline equivalent to lowering under ``options``.

    Applied to :func:`repro.schedule.lower.base_schedule` output built
    with ``options.policy``, the result carries ``options`` verbatim
    (each transform sets the field it owns; untouched fields are the
    base defaults) — so memo keys, ``describe()`` and backend knob
    reads are unchanged by the refactor.
    """
    ts = []
    if options.fuse:
        ts.append(Fuse())
    if options.multicolor:
        ts.append(ColorSweep())
    if options.tile is not None:
        ts.append(Tile(options.tile))
    if options.block is not None:
        ts.append(Block(options.block))
    if options.unroll is not None:
        ts.append(Unroll(options.unroll))
    if options.time_tile > 1:
        ts.append(TimeTile(options.time_tile))
    return Pipeline(tuple(ts))
