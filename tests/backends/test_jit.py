"""JIT machinery: caching, error reporting."""

import ctypes

import pytest

from repro.backends.jit import CompileError, cache_dir, compile_and_load


SRC_OK = """
double forty_two(void) { return 42.0; }
"""


class TestCompileAndLoad:
    def test_compiles_and_runs(self):
        lib = compile_and_load(SRC_OK)
        lib.forty_two.restype = ctypes.c_double
        assert lib.forty_two() == 42.0

    def test_in_process_cache_returns_same_handle(self):
        a = compile_and_load(SRC_OK)
        b = compile_and_load(SRC_OK)
        assert a is b

    def test_flags_are_part_of_the_key(self):
        a = compile_and_load(SRC_OK)
        b = compile_and_load(SRC_OK, openmp=True)
        assert a is not b

    def test_disk_artifact_exists(self):
        compile_and_load(SRC_OK)
        assert any(cache_dir().glob("sf_*.so"))

    def test_compile_error_carries_compiler_output(self):
        with pytest.raises(CompileError, match="compiler failed"):
            compile_and_load("this is not C at all;")

    def test_error_keeps_source_for_debugging(self):
        try:
            compile_and_load("void broken( {")
        except CompileError as e:
            assert "source kept at" in str(e)
        else:  # pragma: no cover
            pytest.fail("expected CompileError")
