"""Lower generated CUDA-C to a plain C99 translation unit.

Our kernels use only the data-parallel core of CUDA C — ``__global__``
functions, the built-in index variables, ``__restrict__`` — all of
which map onto C99 with a small shim.  Kernel text is included
verbatim, so the simulator executes exactly what ``nvcc`` would have
been handed.
"""

from __future__ import annotations

from ..backends.cuda_backend import CudaProgram

__all__ = ["shim_header", "translation_unit"]


def shim_header() -> str:
    return """\
#include <stdint.h>
#include <stddef.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* --- CUDA C shim ---------------------------------------------------- */
#define __global__ static
#define __device__ static
#define __restrict__ restrict
#define __shared__

typedef struct { size_t x, y, z; } sf_dim3;
static sf_dim3 gridDim, blockDim, blockIdx, threadIdx;
/* --------------------------------------------------------------------- */
"""


def translation_unit(program: CudaProgram, ctype: str) -> str:
    """Shim + verbatim kernels + one launch-grid driver per kernel.

    Driver ABI: ``void drive_<kernel>(TYPE** bufs, const double* params,
    const size_t* gsize, const size_t* block)`` — ``gsize`` is the total
    NDRange per axis; the driver derives ``gridDim`` by ceil-division
    and sweeps blocks and threads exactly as the hardware scheduler
    enumerates them (order is unobservable: kernels are data-parallel
    by construction).
    """
    n_bufs = len(program.buffer_order)
    n_params = len(program.param_order)
    parts = [shim_header(), program.source]
    for kname, gsize in program.kernel_ranges.items():
        buf_args = ", ".join(f"bufs[{i}]" for i in range(n_bufs))
        param_args = ", ".join(f"params[{i}]" for i in range(n_params))
        call_args = ", ".join(a for a in (buf_args, param_args) if a)
        nd = len(gsize)
        lines = [
            f"void drive_{kname}({ctype}** bufs, const double* params, "
            "const size_t* gsize, const size_t* block)",
            "{",
            "  blockDim.x = block[0]; blockDim.y = block[1]; blockDim.z = 1;",
            "  gridDim.x = (gsize[0] + block[0] - 1) / block[0];",
            "  gridDim.y = (gsize[1] + block[1] - 1) / block[1];",
            "  gridDim.z = 1;",
        ]
        if nd == 1:
            lines.append("  gridDim.y = 1; blockDim.y = 1;")
        lines += [
            "  for (size_t by = 0; by < gridDim.y; ++by)",
            "  for (size_t bx = 0; bx < gridDim.x; ++bx)",
            "  for (size_t ty = 0; ty < blockDim.y; ++ty)",
            "  for (size_t tx = 0; tx < blockDim.x; ++tx) {",
            "    blockIdx.x = bx; blockIdx.y = by; blockIdx.z = 0;",
            "    threadIdx.x = tx; threadIdx.y = ty; threadIdx.z = 0;",
            f"    {kname}({call_args});",
            "  }",
            "}",
        ]
        parts.append("\n".join(lines))
        parts.append("")
    return "\n".join(parts)
