"""Schedule integration: explain provenance, autotuning, pass manager."""

import numpy as np

from repro.explain import explain
from repro.frontend.passes import default_pipeline
from repro.schedule import ScheduleOptions, schedule_for
from repro.tuning import (
    ScheduleTuneResult,
    autotune_schedule,
    default_schedule_candidates,
)
from tests.schedule._cases import gsrb_workload, laplacian_pair


class TestExplainSchedule:
    def test_provenance_carries_schedule(self):
        group, shapes, _ = gsrb_workload()
        prov = explain(group, shapes, backend="numpy")
        assert prov.schedule is not None
        assert prov.schedule.options.policy == "greedy"
        assert sorted(prov.schedule.stencil_order()) == list(
            range(len(group))
        )

    def test_schedule_options_flow_through_explain(self):
        group, shapes, _ = gsrb_workload()
        prov = explain(
            group, shapes, backend="c", fuse=True, tile=8
        )
        assert prov.schedule.options.fuse is True
        assert prov.schedule.options.tile == 8
        sweeps = [s for s in prov.schedule.steps() if s.sweep is not None]
        assert len(sweeps) == 2

    def test_render_and_to_dict_include_schedule(self):
        group, shapes, _ = gsrb_workload()
        prov = explain(group, shapes, backend="numpy")
        assert "schedule:" in prov.render()
        doc = prov.to_dict()
        assert doc["schedule"]["group"] == group.name

    def test_explain_matches_compiled_schedule(self):
        # What explain reports is byte-for-byte what compile executes.
        group, shapes, _ = gsrb_workload()
        prov = explain(group, shapes, backend="c", fuse=True)
        direct = schedule_for(
            group, shapes, ScheduleOptions(fuse=True)
        )
        assert prov.schedule is direct  # same memoized object


class TestAutotuneSchedule:
    def test_picks_best_candidate(self):
        group, shapes = laplacian_pair(48)
        rng = np.random.default_rng(0)
        arrays = {g: rng.random(s) for g, s in shapes.items()}
        cands = [
            ScheduleOptions(tile=4),
            ScheduleOptions(tile=16, fuse=True),
        ]
        res = autotune_schedule(
            group, arrays, candidates=cands, repeats=1
        )
        assert isinstance(res, ScheduleTuneResult)
        assert res.best in cands
        assert len(res.timings) == 2
        assert res.best_time() == min(t for _, t in res.timings)
        assert res.speedup_over_worst() >= 1.0

    def test_default_candidate_grid(self):
        cands = default_schedule_candidates((2, 4), fuse=(False, True))
        assert len(cands) == 4
        assert {c.tile for c in cands} == {2, 4}
        assert {c.fuse for c in cands} == {False, True}

    def test_interpreter_backend_searchable(self):
        group, shapes = laplacian_pair(16)
        rng = np.random.default_rng(0)
        arrays = {g: rng.random(s) for g, s in shapes.items()}
        res = autotune_schedule(
            group, arrays, backend="numpy",
            candidates=[ScheduleOptions(), ScheduleOptions(fuse=True)],
            repeats=1,
        )
        assert res.best in {ScheduleOptions(), ScheduleOptions(fuse=True)}


class TestPassManagerPhaseReuse:
    def test_greedy_phases_called_n_plus_one_times(self, monkeypatch):
        # Satellite perf fix: each pass's after-count is the next pass's
        # before-count, so N passes cost N+1 phase analyses, not 2N.
        import repro.frontend.passes as passes_mod

        calls = {"n": 0}
        real = passes_mod.greedy_phases

        def counting(group, shapes):
            calls["n"] += 1
            return real(group, shapes)

        monkeypatch.setattr(passes_mod, "greedy_phases", counting)
        group, shapes, _ = gsrb_workload()
        pm = default_pipeline()
        pm.run(group, shapes)
        assert calls["n"] == len(pm.passes) + 1

    def test_records_chain_before_after(self):
        group, shapes, _ = gsrb_workload()
        pm = default_pipeline()
        pm.run(group, shapes)
        for prev, nxt in zip(pm.records, pm.records[1:]):
            assert prev.phases_after == nxt.phases_before
