"""Property test: random *legal* transform chains preserve results.

Any composition of legality-checked transforms must compute the same
function as the untransformed schedule — the transforms only move work
around, never change it.  Hypothesis drives random chains over the GSRB
workload; every chain that survives the legality checks must produce
bitwise-identical grids on the numpy backend (and the schedule must
still pass :func:`verify_schedule` by construction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import base_schedule
from repro.transform import (
    TransformError,
    color_sweep,
    distribute,
    fuse,
    reorder,
    split,
    tile,
    unroll,
    verify_schedule,
)
from tests.schedule._cases import gsrb_workload

GROUP, SHAPES, ARRAYS = gsrb_workload()


def _reference():
    ref = {g: a.copy() for g, a in ARRAYS.items()}
    GROUP.compile(backend="numpy", shapes=SHAPES)(**ref)
    return ref


REF = _reference()


@st.composite
def transform_chains(draw):
    """A chain of 1-5 transforms, some depending on the running state."""
    n = draw(st.integers(min_value=1, max_value=5))
    moves = []
    for _ in range(n):
        moves.append(
            draw(
                st.sampled_from(
                    ("fuse", "distribute", "color_sweep", "tile",
                     "unroll", "split", "reorder")
                )
            )
        )
    params = draw(
        st.tuples(
            st.sampled_from((2, 4, 8, 16)),   # tile size
            st.sampled_from((2, 4)),          # unroll factor
            st.integers(min_value=0, max_value=40),  # split seed
            st.integers(min_value=0, max_value=40),  # reorder seed
        )
    )
    return moves, params


@settings(max_examples=25, deadline=None)
@given(transform_chains())
def test_random_legal_chain_preserves_results(chain):
    moves, (tile_n, unroll_n, split_seed, reorder_seed) = chain
    sched = base_schedule(GROUP, SHAPES)
    applied = []
    for name in moves:
        if name == "fuse":
            t = fuse()
        elif name == "distribute":
            t = distribute()
        elif name == "color_sweep":
            t = color_sweep()
        elif name == "tile":
            t = tile(tile_n)
        elif name == "unroll":
            t = unroll(unroll_n)
        elif name == "split":
            flat = list(sched.steps())
            wide = [
                i for i, s in enumerate(flat) if len(s.stencils) > 1
            ]
            if not wide:
                continue  # nothing fused yet — skip this move
            i = wide[split_seed % len(wide)]
            t = split(i, 1 + split_seed % (len(flat[i].stencils) - 1))
        else:  # reorder
            multi = [
                i for i, ph in enumerate(sched.phases)
                if len(ph.steps) >= 2
            ]
            if not multi:
                continue
            pi = multi[reorder_seed % len(multi)]
            k = len(sched.phases[pi].steps)
            perm = tuple((j + 1 + reorder_seed) % k for j in range(k))
            t = reorder(pi, perm)
        sched = t(sched)
        applied.append(t.describe())
    # by construction every applied transform re-verified the schedule
    assert verify_schedule(sched) == [], applied
    got = {g: a.copy() for g, a in ARRAYS.items()}
    GROUP.compile(backend="numpy", shapes=SHAPES, schedule=sched)(**got)
    for g in sorted(SHAPES):
        np.testing.assert_array_equal(
            got[g], REF[g],
            err_msg=f"chain {applied} changed the computation on {g!r}",
        )


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from((2, 4, 8)),
    st.booleans(),
    st.booleans(),
)
def test_knob_chains_match_fresh_presets(tile_n, do_fuse, do_sweep):
    """Chained knob transforms equal the one-shot preset of the result."""
    from repro.schedule import ScheduleOptions, build_schedule

    sched = base_schedule(GROUP, SHAPES)
    if do_fuse:
        sched = fuse()(sched)
    if do_sweep:
        sched = color_sweep()(sched)
    sched = tile(tile_n)(sched)
    opts = ScheduleOptions(
        fuse=do_fuse, multicolor=do_sweep, tile=tile_n
    ) if do_sweep else ScheduleOptions(
        fuse=do_fuse, multicolor=False, tile=tile_n
    )
    # base_schedule starts multicolor=False; color_sweep turns it on
    expected = build_schedule(GROUP, SHAPES, opts)
    assert sched.options == opts
    assert [s.stencils for s in sched.steps()] == [
        s.stencils for s in expected.steps()
    ]
    assert [s.sweep for s in sched.steps()] == [
        s.sweep for s in expected.steps()
    ]


def test_illegal_moves_never_corrupt_the_schedule():
    """A refused transform leaves the input schedule untouched."""
    sched = base_schedule(GROUP, SHAPES)
    before = sched.to_dict()
    with pytest.raises(TransformError):
        split(999, 1)(sched)
    assert sched.to_dict() == before
