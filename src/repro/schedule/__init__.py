"""``repro.schedule`` — the unified schedule IR (one plan, every backend).

The lowering stage between the frontend analysis and the
micro-compilers: :func:`build_schedule` turns a
:class:`~repro.core.stencil.StencilGroup` plus concrete shapes into a
:class:`Schedule` — phases, fused chains, color sweeps and tile/block
decisions, each tagged with the Diophantine evidence that legalizes it.
All six backends consume the same :class:`Schedule` instead of
re-deriving structure; pass one explicitly via
``group.compile(backend=..., schedule=...)`` or let the backend build it
from its declared :class:`ScheduleOptions` knobs.
"""

from .ir import (
    Evidence,
    ParityClass,
    Schedule,
    SchedulePhase,
    Step,
    detect_parity_class,
)
from .lower import (
    as_schedule,
    base_schedule,
    build_schedule,
    fusion_chains,
    pop_schedule_spec,
    schedule_for,
)
from .options import POLICIES, ScheduleOptions

__all__ = [
    "Evidence",
    "ParityClass",
    "Schedule",
    "SchedulePhase",
    "Step",
    "detect_parity_class",
    "as_schedule",
    "base_schedule",
    "build_schedule",
    "fusion_chains",
    "pop_schedule_spec",
    "schedule_for",
    "POLICIES",
    "ScheduleOptions",
]
