"""Weight containers: :class:`WeightArray` and :class:`SparseArray`.

A ``WeightArray`` is the nested-list notation from the paper (TableI): in
1-D an odd- or even-length list whose *middle* element is the stencil
centre; in N dimensions, lists nested N deep.  Entries may be plain
numbers **or stencil expressions** — the latter is how variable-coefficient
operators are written (paper Fig.4 line5 nests ``beta`` components inside
the weights of the ``mesh`` component).

A ``SparseArray`` is the equivalent hashmap notation: offset vector →
weight.  Both normalize to the same internal form: a mapping
``offset tuple -> number | Expr`` with zero entries dropped.
"""

from __future__ import annotations

import numbers
from typing import Iterable, Iterator, Mapping, Sequence

from .expr import Constant, Expr, as_expr

__all__ = ["WeightArray", "SparseArray", "as_weights"]

WeightValue = "float | Expr"


def _is_zero(w) -> bool:
    if isinstance(w, numbers.Real):
        return float(w) == 0.0
    if isinstance(w, Constant):
        return w.value == 0.0
    return False


def _nested_shape(data) -> tuple[int, ...]:
    """Shape of a rectangular nested list; raises on raggedness."""
    if isinstance(data, (numbers.Real, Expr)):
        return ()
    if not isinstance(data, (list, tuple)):
        raise TypeError(f"weight entries must be numbers, Expr, or nested lists; got {type(data).__name__}")
    if len(data) == 0:
        raise ValueError("weight arrays may not contain empty lists")
    shapes = [_nested_shape(d) for d in data]
    first = shapes[0]
    if any(s != first for s in shapes[1:]):
        raise ValueError("ragged weight array")
    return (len(data),) + first


def _center(extent: int) -> int:
    """Centre index of one axis: the middle element (paper SectionII-A).

    Even extents round down, so a length-2 axis has offsets {0, +1} — this
    matches face-coefficient usage where a weight sits on the +1 face.
    """
    return (extent - 1) // 2


class _WeightsBase:
    """Shared behaviour: normalized offset->weight mapping."""

    _entries: dict[tuple[int, ...], object]
    _ndim: int

    @property
    def ndim(self) -> int:
        return self._ndim

    @property
    def entries(self) -> Mapping[tuple[int, ...], object]:
        """Read-only view of offset -> (number | Expr), zeros dropped."""
        return dict(self._entries)

    def offsets(self) -> list[tuple[int, ...]]:
        return sorted(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[tuple[int, ...], object]]:
        return iter(sorted(self._entries.items()))

    def __getitem__(self, offset: Sequence[int]):
        return self._entries.get(tuple(int(o) for o in offset), 0.0)

    def __contains__(self, offset: Sequence[int]) -> bool:
        return tuple(int(o) for o in offset) in self._entries

    def radius(self) -> int:
        """Maximum Chebyshev-norm offset — the stencil's reach."""
        if not self._entries:
            return 0
        return max(max(abs(c) for c in off) for off in self._entries)

    def is_symmetric(self) -> bool:
        """Point symmetry of numeric weights about the centre.

        Expression-valued weights are compared structurally.
        """
        for off, w in self._entries.items():
            neg = tuple(-c for c in off)
            other = self._entries.get(neg)
            if other is None:
                return False
            if isinstance(w, numbers.Real) and isinstance(other, numbers.Real):
                if float(w) != float(other):
                    return False
            elif w != other:
                return False
        return True

    def signature(self) -> str:
        parts = []
        for off, w in sorted(self._entries.items()):
            ws = w.signature() if isinstance(w, Expr) else repr(float(w))
            parts.append(f"{list(off)}:{ws}")
        return "{" + ",".join(parts) + "}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, _WeightsBase):
            return NotImplemented
        if self._ndim != other._ndim:
            return False
        a = {k: (float(v) if isinstance(v, numbers.Real) else v) for k, v in self._entries.items()}
        b = {k: (float(v) if isinstance(v, numbers.Real) else v) for k, v in other._entries.items()}
        return a == b

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.signature()})"


class WeightArray(_WeightsBase):
    """Nested-list stencil weights centred on the middle element.

    >>> WeightArray([1, -2, 1]).entries
    {(-1,): 1.0, (1,): 1.0, (0,): -2.0}  # order may differ
    """

    def __init__(self, data: Sequence) -> None:
        shape = _nested_shape(data)
        if shape == ():
            raise TypeError("WeightArray requires a (nested) list of weights")
        self._ndim = len(shape)
        centers = tuple(_center(e) for e in shape)
        entries: dict[tuple[int, ...], object] = {}

        def visit(node, idx: tuple[int, ...]):
            if len(idx) == self._ndim:
                if not _is_zero(node):
                    off = tuple(i - c for i, c in zip(idx, centers))
                    entries[off] = (
                        float(node) if isinstance(node, numbers.Real) else node
                    )
                return
            for i, sub in enumerate(node):
                visit(sub, idx + (i,))

        visit(data, ())
        self._entries = entries
        self._shape = shape

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape


class SparseArray(_WeightsBase):
    """Hashmap stencil weights: ``{offset_vector: weight}`` (TableI).

    The natural notation for large-offset boundary stencils and asymmetric
    operators where nested lists would be mostly zeros.
    """

    def __init__(self, entries: Mapping[Sequence[int], object]) -> None:
        if not isinstance(entries, Mapping):
            raise TypeError("SparseArray requires a mapping offset -> weight")
        if not entries:
            raise ValueError("SparseArray requires at least one entry")
        norm: dict[tuple[int, ...], object] = {}
        ndim = None
        for off, w in entries.items():
            off_t = tuple(int(o) for o in off)
            if ndim is None:
                ndim = len(off_t)
            elif len(off_t) != ndim:
                raise ValueError("inconsistent offset dimensionality")
            if not isinstance(w, (numbers.Real, Expr)):
                raise TypeError(f"weight must be a number or Expr, got {type(w).__name__}")
            if not _is_zero(w):
                norm[off_t] = float(w) if isinstance(w, numbers.Real) else w
        assert ndim is not None
        self._ndim = ndim
        self._entries = norm


def as_weights(obj, ndim: int | None = None) -> _WeightsBase:
    """Coerce lists / dicts / numbers into a weight container.

    A bare number becomes a pure centre-point weight (``ndim`` required).
    """
    if isinstance(obj, _WeightsBase):
        return obj
    if isinstance(obj, Mapping):
        return SparseArray(obj)
    if isinstance(obj, (list, tuple)):
        return WeightArray(obj)
    if isinstance(obj, (numbers.Real, Expr)):
        if ndim is None:
            raise ValueError("ndim required to lift a scalar weight")
        return SparseArray({(0,) * ndim: obj})
    raise TypeError(f"cannot interpret {obj!r} as stencil weights")
