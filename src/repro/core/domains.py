"""Iteration domains: :class:`RectDomain` and :class:`DomainUnion`.

The organizing principle of the Snowflake language (paper SectionII) is
that a stencil is applied over an arbitrary union of strided
hyperrectangles.  Interiors, red/black colorings, and boundary faces are
all just domains — there is no special boundary machinery.

``RectDomain(start, end, stride)`` describes, per dimension, the index
set ``{start, start+stride, ...} ∩ [start, end)``.  Negative ``start`` or
``end`` values are *grid-size relative* (Python-style: ``-1`` resolves to
``size - 1``), which lets one domain object be reused across the
exponentially-varying level sizes of a multigrid hierarchy.  A stride of
``0`` pins the dimension to the single index ``start`` — the idiom for
face domains.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..util.diophantine import (
    count_lattice_points,
    first_lattice_point,
    lattice_ranges_intersect_nonempty,
)

__all__ = ["RectDomain", "DomainUnion", "ResolvedRect", "as_domain"]


@dataclass(frozen=True)
class ResolvedRect:
    """A :class:`RectDomain` bound to a concrete grid shape.

    ``lows[d] + strides[d] * k`` for ``k in [0, counts[d])`` enumerates
    dimension ``d``; a pinned dimension has ``strides[d] == 0`` and
    ``counts[d] == 1``.
    """

    lows: tuple[int, ...]
    strides: tuple[int, ...]
    counts: tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.lows)

    @property
    def npoints(self) -> int:
        n = 1
        for c in self.counts:
            n *= c
        return n

    def is_empty(self) -> bool:
        return any(c == 0 for c in self.counts)

    def highs(self) -> tuple[int, ...]:
        """Largest index per dimension (undefined for empty domains)."""
        return tuple(
            lo + st * (ct - 1) if ct > 0 else lo
            for lo, st, ct in zip(self.lows, self.strides, self.counts)
        )

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise ValueError("point dimensionality mismatch")
        for p, lo, st, ct in zip(point, self.lows, self.strides, self.counts):
            if first_lattice_point(lo, st, ct, int(p)) is None:
                return False
        return True

    def points(self) -> Iterator[tuple[int, ...]]:
        """Enumerate lattice points in row-major order."""
        axes = [
            range(lo, lo + max(st, 1) * ct, max(st, 1)) if ct > 0 else range(0)
            for lo, st, ct in zip(self.lows, self.strides, self.counts)
        ]
        return itertools.product(*axes)

    def ranges(self) -> tuple[range, ...]:
        """Per-dimension ``range`` objects (stride-1 view for pinned dims)."""
        out = []
        for lo, st, ct in zip(self.lows, self.strides, self.counts):
            step = st if st > 0 else 1
            out.append(range(lo, lo + step * ct, step))
        return tuple(out)

    def intersects(self, other: "ResolvedRect") -> bool:
        """Exact lattice-intersection test (per-dimension Diophantine)."""
        if other.ndim != self.ndim:
            raise ValueError("dimensionality mismatch")
        if self.is_empty() or other.is_empty():
            return False
        return all(
            lattice_ranges_intersect_nonempty(
                l1, s1, c1, l2, s2, c2
            )
            for l1, s1, c1, l2, s2, c2 in zip(
                self.lows, self.strides, self.counts,
                other.lows, other.strides, other.counts,
            )
        )


def _resolve_index(v: int, size: int) -> int:
    return v if v >= 0 else size + v


class RectDomain:
    """A strided hyperrectangle ``[start : end : stride]`` per dimension."""

    __slots__ = ("start", "end", "stride")

    def __init__(
        self,
        start: Sequence[int],
        end: Sequence[int],
        stride: Sequence[int] | None = None,
    ) -> None:
        st = tuple(int(v) for v in start)
        en = tuple(int(v) for v in end)
        if stride is None:
            sd = (1,) * len(st)
        else:
            sd = tuple(int(v) for v in stride)
        if not (len(st) == len(en) == len(sd)):
            raise ValueError("start/end/stride dimensionality mismatch")
        if len(st) == 0:
            raise ValueError("domains must have at least one dimension")
        if any(s < 0 for s in sd):
            raise ValueError("strides must be non-negative (0 pins a dim)")
        object.__setattr__(self, "start", st)
        object.__setattr__(self, "end", en)
        object.__setattr__(self, "stride", sd)

    def __setattr__(self, *a):
        raise AttributeError("RectDomain is immutable")

    @property
    def ndim(self) -> int:
        return len(self.start)

    def __add__(self, other: "RectDomain | DomainUnion") -> "DomainUnion":
        """Domain union, written ``+`` as in the paper (Fig.4 line11)."""
        return DomainUnion([self]) + other

    def resolve(self, shape: Sequence[int]) -> ResolvedRect:
        """Bind to a grid shape, producing concrete lattice parameters."""
        shape = tuple(int(s) for s in shape)
        if len(shape) != self.ndim:
            raise ValueError(
                f"domain is {self.ndim}-D but shape {shape} is {len(shape)}-D"
            )
        lows, strides, counts = [], [], []
        for st, en, sd, size in zip(self.start, self.end, self.stride, shape):
            lo = _resolve_index(st, size)
            hi = _resolve_index(en, size)
            if sd == 0:
                # Pinned: a single index at `lo`; must be a valid cell.
                ct = 1 if 0 <= lo < size else 0
            else:
                lo_c = lo
                hi_c = min(hi, size)
                if lo_c < 0:
                    # shift start up to the first in-bounds lattice point
                    k = (-lo_c + sd - 1) // sd
                    lo_c += k * sd
                ct = count_lattice_points(lo_c, hi_c, sd)
                lo = lo_c
            lows.append(lo)
            strides.append(sd)
            counts.append(ct)
        return ResolvedRect(tuple(lows), tuple(strides), tuple(counts))

    def signature(self) -> str:
        return f"R[{list(self.start)}:{list(self.end)}:{list(self.stride)}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RectDomain)
            and other.start == self.start
            and other.end == self.end
            and other.stride == self.stride
        )

    def __hash__(self) -> int:
        return hash(("RectDomain", self.start, self.end, self.stride))

    def __repr__(self) -> str:  # pragma: no cover
        return self.signature()

    # -- convenience constructors ------------------------------------------

    @staticmethod
    def interior(ndim: int, ghost: int = 1) -> "RectDomain":
        """The interior of a grid with a ``ghost``-cell halo on every side."""
        return RectDomain((ghost,) * ndim, (-ghost,) * ndim, (1,) * ndim)

    @staticmethod
    def colored(ndim: int, parity: int, ghost: int = 1) -> "DomainUnion":
        """Checkerboard color over the interior: points with
        ``sum(i) % 2 == (parity + ndim*ghost) % 2`` relative to the corner.

        Built, as in the paper, as a union of 2^(ndim-1) stride-2 boxes.
        """
        if parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")
        rects = []
        for offs in itertools.product((0, 1), repeat=ndim):
            if sum(offs) % 2 != parity % 2:
                continue
            start = tuple(ghost + o for o in offs)
            rects.append(
                RectDomain(start, (-ghost,) * ndim, (2,) * ndim)
            )
        return DomainUnion(rects)


class DomainUnion:
    """A finite union of :class:`RectDomain` — colorings, AMR patches."""

    __slots__ = ("rects",)

    def __init__(self, rects: Iterable[RectDomain]) -> None:
        rl = tuple(rects)
        if not rl:
            raise ValueError("DomainUnion requires at least one RectDomain")
        if any(not isinstance(r, RectDomain) for r in rl):
            raise TypeError("DomainUnion members must be RectDomain")
        nd = rl[0].ndim
        if any(r.ndim != nd for r in rl):
            raise ValueError("all union members must share dimensionality")
        object.__setattr__(self, "rects", rl)

    def __setattr__(self, *a):
        raise AttributeError("DomainUnion is immutable")

    @property
    def ndim(self) -> int:
        return self.rects[0].ndim

    def __add__(self, other: "RectDomain | DomainUnion") -> "DomainUnion":
        if isinstance(other, RectDomain):
            return DomainUnion(self.rects + (other,))
        if isinstance(other, DomainUnion):
            return DomainUnion(self.rects + other.rects)
        return NotImplemented

    def __radd__(self, other: "RectDomain") -> "DomainUnion":
        if isinstance(other, RectDomain):
            return DomainUnion((other,) + self.rects)
        return NotImplemented

    def __iter__(self) -> Iterator[RectDomain]:
        return iter(self.rects)

    def __len__(self) -> int:
        return len(self.rects)

    def resolve(self, shape: Sequence[int]) -> list[ResolvedRect]:
        return [r.resolve(shape) for r in self.rects]

    def npoints(self, shape: Sequence[int]) -> int:
        """Total points counted with multiplicity (unions are expected to
        be disjoint; :mod:`repro.analysis.colors` verifies that)."""
        return sum(r.npoints for r in self.resolve(shape))

    def points(self, shape: Sequence[int]) -> Iterator[tuple[int, ...]]:
        for rr in self.resolve(shape):
            yield from rr.points()

    def contains(self, point: Sequence[int], shape: Sequence[int]) -> bool:
        return any(rr.contains(point) for rr in self.resolve(shape))

    def signature(self) -> str:
        return "U(" + "|".join(r.signature() for r in self.rects) + ")"

    def __eq__(self, other) -> bool:
        return isinstance(other, DomainUnion) and other.rects == self.rects

    def __hash__(self) -> int:
        return hash(("DomainUnion", self.rects))

    def __repr__(self) -> str:  # pragma: no cover
        return self.signature()


def as_domain(obj: "RectDomain | DomainUnion") -> DomainUnion:
    """Normalize any domain to a union (possibly of one box)."""
    if isinstance(obj, DomainUnion):
        return obj
    if isinstance(obj, RectDomain):
        return DomainUnion([obj])
    raise TypeError(f"cannot interpret {obj!r} as a domain")
