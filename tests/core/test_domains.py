"""Domains: resolution semantics, membership, unions, lattice queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import DomainUnion, RectDomain, ResolvedRect, as_domain


class TestResolve:
    def test_dense_interior(self):
        r = RectDomain((1, 1), (-1, -1)).resolve((10, 12))
        assert r.lows == (1, 1)
        assert r.counts == (8, 10)
        assert r.strides == (1, 1)

    def test_negative_indices_are_size_relative(self):
        r = RectDomain((2,), (-3,)).resolve((10,))
        # end -3 -> 7 exclusive: points 2..6
        assert list(r.points()) == [(2,), (3,), (4,), (5,), (6,)]

    def test_stride_2_red_box(self):
        r = RectDomain((1,), (-1,), (2,)).resolve((8,))
        # indices 1,3,5 (end = 7 exclusive)
        assert list(r.points()) == [(1,), (3,), (5,)]

    def test_pinned_dimension(self):
        r = RectDomain((0, 1), (1, -1), (0, 1)).resolve((6, 6))
        assert r.counts == (1, 4)
        assert [p for p in r.points()] == [(0, j) for j in range(1, 5)]

    def test_pinned_negative(self):
        r = RectDomain((-1,), (-1,), (0,)).resolve((6,))
        assert list(r.points()) == [(5,)]

    def test_pinned_out_of_bounds_is_empty(self):
        r = RectDomain((9,), (10,), (0,)).resolve((6,))
        assert r.is_empty()

    def test_empty_when_start_past_end(self):
        r = RectDomain((5,), (3,)).resolve((10,))
        assert r.is_empty()
        assert r.npoints == 0

    def test_end_clamped_to_size(self):
        r = RectDomain((0,), (100,)).resolve((5,))
        assert r.counts == (5,)

    def test_dimensionality_mismatch(self):
        with pytest.raises(ValueError):
            RectDomain((1, 1), (-1, -1)).resolve((10,))

    def test_whole_grid(self):
        r = RectDomain((0, 0), (6, 6)).resolve((6, 6))
        assert r.npoints == 36


class TestRectDomainValidation:
    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError):
            RectDomain((0,), (5,), (-1,))

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            RectDomain((), ())

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RectDomain((0, 0), (5,))

    def test_immutable(self):
        d = RectDomain((0,), (5,))
        with pytest.raises(AttributeError):
            d.start = (1,)

    def test_equality_hash(self):
        assert RectDomain((1,), (-1,), (2,)) == RectDomain((1,), (-1,), (2,))
        assert hash(RectDomain((1,), (-1,))) == hash(RectDomain((1,), (-1,)))


class TestResolvedRect:
    def test_contains(self):
        r = RectDomain((1,), (-1,), (2,)).resolve((10,))
        assert r.contains((3,))
        assert not r.contains((4,))
        assert not r.contains((9,))

    def test_contains_wrong_dims(self):
        r = RectDomain((1,), (-1,)).resolve((10,))
        with pytest.raises(ValueError):
            r.contains((1, 2))

    def test_highs(self):
        r = RectDomain((1,), (8,), (3,)).resolve((10,))
        assert r.highs() == (7,)  # 1, 4, 7

    def test_ranges_match_points(self):
        r = RectDomain((1, 0), (-1, 5), (2, 0)).resolve((9, 9))
        from itertools import product

        assert list(product(*r.ranges())) == list(r.points())


class TestUnion:
    def test_plus_operator(self):
        u = RectDomain((1, 1), (-1, -1), (2, 2)) + RectDomain(
            (2, 2), (-1, -1), (2, 2)
        )
        assert isinstance(u, DomainUnion)
        assert len(u) == 2

    def test_union_plus_rect_and_rect_plus_union(self):
        a, b, c = (RectDomain((i,), (-1,)) for i in (1, 2, 3))
        assert len((a + b) + c) == 3
        assert len(a + (b + c)) == 3

    def test_union_requires_same_ndim(self):
        with pytest.raises(ValueError):
            DomainUnion([RectDomain((1,), (-1,)), RectDomain((1, 1), (-1, -1))])

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            DomainUnion([])

    def test_npoints_and_points(self):
        u = RectDomain((0,), (4,)) + RectDomain((4,), (8,))
        assert u.npoints((8,)) == 8
        assert sorted(u.points((8,))) == [(i,) for i in range(8)]

    def test_contains(self):
        u = RectDomain((0,), (2,)) + RectDomain((6,), (8,))
        assert u.contains((7,), (8,))
        assert not u.contains((3,), (8,))

    def test_as_domain(self):
        r = RectDomain((0,), (5,))
        assert isinstance(as_domain(r), DomainUnion)
        u = DomainUnion([r])
        assert as_domain(u) is u
        with pytest.raises(TypeError):
            as_domain("nope")


class TestColored:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_red_black_partition_interior(self, ndim):
        shape = (9,) * ndim
        red = RectDomain.colored(ndim, 0)
        black = RectDomain.colored(ndim, 1)
        interior = {
            p
            for p in np.ndindex(*shape)
            if all(1 <= c < s - 1 for c, s in zip(p, shape))
        }
        red_pts = set(red.points(shape))
        black_pts = set(black.points(shape))
        assert red_pts | black_pts == interior
        assert not (red_pts & black_pts)

    def test_red_owns_corner(self):
        red = RectDomain.colored(2, 0)
        assert red.contains((1, 1), (8, 8))

    def test_colors_are_checkerboard(self):
        red = RectDomain.colored(2, 0)
        for p in red.points((10, 10)):
            assert (p[0] + p[1]) % 2 == 0

    def test_bad_parity(self):
        with pytest.raises(ValueError):
            RectDomain.colored(2, 2)


class TestIntersects:
    def test_disjoint_strided(self):
        a = RectDomain((1,), (-1,), (2,)).resolve((10,))
        b = RectDomain((2,), (-1,), (2,)).resolve((10,))
        assert not a.intersects(b)

    def test_same_lattice(self):
        a = RectDomain((1,), (-1,), (2,)).resolve((10,))
        assert a.intersects(a)

    def test_overlapping_boxes(self):
        a = RectDomain((0, 0), (5, 5)).resolve((10, 10))
        b = RectDomain((4, 4), (8, 8)).resolve((10, 10))
        assert a.intersects(b)
        c = RectDomain((5, 5), (8, 8)).resolve((10, 10))
        assert not a.intersects(c)

    @settings(max_examples=200, deadline=None)
    @given(
        s1=st.integers(0, 6), t1=st.integers(0, 4), n1=st.integers(1, 6),
        s2=st.integers(0, 6), t2=st.integers(0, 4), n2=st.integers(1, 6),
    )
    def test_intersects_matches_brute_force_1d(self, s1, t1, n1, s2, t2, n2):
        a = ResolvedRect((s1,), (t1,), (n1 if t1 else 1,))
        b = ResolvedRect((s2,), (t2,), (n2 if t2 else 1,))
        pts_a = set(a.points())
        pts_b = set(b.points())
        assert a.intersects(b) == bool(pts_a & pts_b)

    @settings(max_examples=100, deadline=None)
    @given(
        lows=st.tuples(st.integers(0, 4), st.integers(0, 4)),
        strides=st.tuples(st.integers(1, 3), st.integers(1, 3)),
        counts=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        lows2=st.tuples(st.integers(0, 4), st.integers(0, 4)),
        strides2=st.tuples(st.integers(1, 3), st.integers(1, 3)),
        counts2=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    )
    def test_intersects_matches_brute_force_2d(
        self, lows, strides, counts, lows2, strides2, counts2
    ):
        a = ResolvedRect(lows, strides, counts)
        b = ResolvedRect(lows2, strides2, counts2)
        assert a.intersects(b) == bool(set(a.points()) & set(b.points()))
