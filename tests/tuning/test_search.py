"""Cost-model-guided schedule search: prediction, search, telemetry."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.schedule import ScheduleOptions
from repro.tuning import (
    autotune_schedule,
    check_tune_model,
    predict_schedule_time,
    search_schedules,
)
LAP = WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]])


def lap_workload(n=12):
    s = Stencil(Component("u", LAP), "out", RectDomain((1, 1), (-1, -1)))
    group = StencilGroup([s], name="lap")
    shapes = {"u": (n, n), "out": (n, n)}
    rng = np.random.default_rng(3)
    arrays = {g: rng.standard_normal(sh) for g, sh in shapes.items()}
    return group, shapes, arrays


def snapshot_workload(n=10):
    """In-place symmetric read — refuses time tiling (snapshot step)."""
    w = WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    s = Stencil(
        Component("u", w), "u", RectDomain((1, 1), (-1, -1)),
        name="inplace",
    )
    group = StencilGroup([s], name="snap")
    shapes = {"u": (n, n)}
    rng = np.random.default_rng(3)
    arrays = {g: rng.standard_normal(sh) for g, sh in shapes.items()}
    return group, shapes, arrays


class TestPredict:
    def test_deterministic_on_paper_spec(self):
        group, shapes, _ = lap_workload()
        opts = ScheduleOptions(tile=8)
        a = predict_schedule_time(group, shapes, opts, spec="paper-cpu")
        b = predict_schedule_time(group, shapes, opts, spec="paper-cpu")
        assert a == b  # bit-exact: pure arithmetic on a fixed record
        assert 0.0 < a < 1.0

    def test_time_tile_prediction_uses_swept_traffic(self):
        group, shapes, _ = lap_workload(64)
        base = predict_schedule_time(
            group, shapes, ScheduleOptions(), spec="paper-cpu"
        )
        tiled = predict_schedule_time(
            group, shapes, ScheduleOptions(time_tile=4), spec="paper-cpu"
        )
        # k applications per call: more than base, less than k * base
        assert base < tiled < 4 * base

    def test_refused_candidate_raises_through(self):
        from repro.transform import TransformError

        group, shapes, _ = snapshot_workload()
        with pytest.raises(TransformError):
            predict_schedule_time(
                group, shapes,
                ScheduleOptions(multicolor=False, time_tile=2),
                spec="paper-cpu",
            )

    def test_unknown_spec_rejected(self):
        group, shapes, _ = lap_workload()
        with pytest.raises(ValueError, match="unknown machine spec"):
            predict_schedule_time(
                group, shapes, ScheduleOptions(), spec="nonesuch"
            )


class TestSearch:
    def test_beam_measures_at_most_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path))
        group, shapes, arrays = lap_workload()
        res = search_schedules(
            group, arrays, backend="numpy", budget=3, repeats=1,
        )
        assert res.best is not None
        assert len(res.measured()) <= 3
        assert res.best_measured_s == min(
            t.measured_s for t in res.measured()
        )
        assert res.strategy == "beam"
        json.dumps(res.to_dict())  # artifact must serialize

    def test_anneal_strategy_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path))
        group, shapes, arrays = lap_workload()
        res = search_schedules(
            group, arrays, backend="numpy", budget=3, repeats=1,
            strategy="anneal", seed=7, persist=False,
        )
        assert res.best is not None
        assert res.strategy == "anneal"

    def test_refused_candidates_recorded_with_evidence_kind(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "events")
        telemetry.events.reset()
        group, shapes, arrays = snapshot_workload()
        res = search_schedules(
            group, arrays, backend="numpy", budget=2, repeats=1,
            base=ScheduleOptions(multicolor=False), persist=False,
        )
        refused = [t for t in res.trials if t.status == "refused"]
        assert refused, "time-tiled candidates must be refused"
        assert all(
            t.detail == "time-tile-refused" for t in refused
        )
        recs = [
            r for r in telemetry.events.records()
            if r["event"] == "tuning.candidate.refused"
        ]
        assert recs and recs[0]["kind"] == "time-tile-refused"

    def test_trial_and_winner_events_emitted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "events")
        telemetry.events.reset()
        group, shapes, arrays = lap_workload()
        search_schedules(
            group, arrays, backend="numpy", budget=2, repeats=1,
        )
        counts = telemetry.events.counts_by_name()
        assert counts.get("tuning.trial", 0) >= 1
        assert counts.get("tuning.winner", 0) == 1

    def test_table_renders_all_trials(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path))
        group, shapes, arrays = lap_workload()
        res = search_schedules(
            group, arrays, backend="numpy", budget=2, repeats=1,
            persist=False,
        )
        table = res.table()
        assert "measured" in table and "predicted" in table
        assert table.count("\n") + 1 >= len(res.trials)

    def test_bad_budget_and_strategy_rejected(self):
        group, shapes, arrays = lap_workload()
        with pytest.raises(ValueError):
            search_schedules(group, arrays, backend="numpy", budget=0)
        with pytest.raises(ValueError):
            search_schedules(
                group, arrays, backend="numpy", strategy="genetic"
            )


class TestAutotunePredictions:
    def test_predictions_recorded_next_to_timings(self):
        group, shapes, arrays = lap_workload()
        res = autotune_schedule(
            group, arrays, backend="numpy",
            candidates=[ScheduleOptions(), ScheduleOptions(tile=8)],
            repeats=1,
        )
        assert len(res.predicted) == len(res.timings) == 2
        assert all(p > 0 for p in res.predicted)

    def test_check_tune_model_bit_exact(self):
        group, shapes, arrays = lap_workload()
        res = autotune_schedule(
            group, arrays, backend="numpy",
            candidates=[ScheduleOptions(), ScheduleOptions(tile=8)],
            repeats=1,
        )
        assert check_tune_model(res, group, shapes) == []

    def test_check_tune_model_catches_drift(self):
        from repro.tuning import ScheduleTuneResult

        group, shapes, arrays = lap_workload()
        res = autotune_schedule(
            group, arrays, backend="numpy",
            candidates=[ScheduleOptions()], repeats=1,
        )
        stale = ScheduleTuneResult(
            res.best, res.timings, (res.predicted[0] * 1.5,)
        )
        problems = check_tune_model(stale, group, shapes)
        assert problems and "recorded" in problems[0]

    def test_check_tune_model_requires_predictions(self):
        from repro.tuning import ScheduleTuneResult

        group, shapes, arrays = lap_workload()
        bare = ScheduleTuneResult(ScheduleOptions(), ((ScheduleOptions(), 1.0),))
        problems = check_tune_model(bare, group, shapes)
        assert problems == ["result records no predictions; cannot re-derive"]

    def test_legacy_positional_construction_still_works(self):
        from repro.tuning import ScheduleTuneResult

        r = ScheduleTuneResult(
            ScheduleOptions(), ((ScheduleOptions(), 1.0),)
        )
        assert r.predicted == ()
        assert r.best_time() == 1.0

    def test_gsrb_refusal_path_emits_event(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "events")
        telemetry.events.reset()
        group, shapes, arrays = snapshot_workload()
        res = autotune_schedule(
            group, arrays, backend="numpy",
            candidates=[
                ScheduleOptions(multicolor=False),
                ScheduleOptions(multicolor=False, time_tile=2),
            ],
            repeats=1,
        )
        assert res.timings[1][1] == float("inf")
        recs = [
            r for r in telemetry.events.records()
            if r["event"] == "tuning.candidate.refused"
        ]
        assert recs and recs[0]["kind"] == "time-tile-refused"
