"""Per-stencil profiling of a group — "no optimization without measuring".

The HPC-Python discipline the guides insist on: before reaching for a
compile option, measure where the time goes.  :func:`profile_group`
compiles and times every member stencil of a group *individually* (same
backend and options as the real run), so the report shows which stencil
dominates and how far it sits from the machine's bandwidth bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.stencil import StencilGroup
from ..core.validate import iteration_shape
from .. import telemetry
from .tables import format_table
from .timing import best_of, clock_resolution

__all__ = ["StencilProfile", "profile_group", "format_profile"]


@dataclass(frozen=True)
class StencilProfile:
    name: str
    points: int
    seconds: float
    stencils_per_s: float  # NaN when the timing is below clock resolution
    share: float  # fraction of the whole group's measured time (NaN if none)


def profile_group(
    group: StencilGroup,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float] | None = None,
    *,
    backend: str = "c",
    repeats: int = 3,
    **backend_options,
) -> list[StencilProfile]:
    """Time each stencil of ``group`` separately.

    ``arrays`` provide shapes and initial values only — the profiler
    runs every member stencil against internal scratch copies, so the
    caller's arrays are never mutated.  Member stencils are compiled
    alone, so cross-stencil scheduling effects are deliberately
    excluded — this answers "which *operator* is hot", which is the
    question that decides tuning effort.

    Timings below the host's measured clock resolution are reported
    honestly: ``stencils_per_s`` is NaN (never ``inf``), and when the
    whole group is unresolved every ``share`` is NaN rather than an
    invented split.  Each best-of time also lands in the telemetry
    registry under the ``profile.<stencil>`` timer.
    """
    params = dict(params or {})
    shapes = {g: a.shape for g, a in arrays.items()}
    scratch = {g: np.array(a, copy=True) for g, a in arrays.items()}
    floor = clock_resolution()
    raw: list[tuple[str, int, float]] = []
    for stencil in group:
        sub = StencilGroup([stencil], name=stencil.name)
        kernel = sub.compile(
            backend=backend,
            shapes={g: shapes[g] for g in sub.grids()},
            **backend_options,
        )
        args = {g: scratch[g] for g in sub.grids()}
        pvals = {p: params[p] for p in sub.params()}
        t = best_of(lambda: kernel(**args, **pvals), warmup=1, repeats=repeats)
        telemetry.record_time(f"profile.{stencil.name}", t)
        it_shape = iteration_shape(stencil, shapes)
        points = sum(
            r.npoints for r in stencil.domain.resolve(it_shape)
        )
        raw.append((stencil.name, points, t))
    total = sum(t for _, _, t in raw)
    resolved = total > floor
    return [
        StencilProfile(
            name=n,
            points=p,
            seconds=t,
            stencils_per_s=(p / t if t > floor else float("nan")),
            share=(t / total if resolved else float("nan")),
        )
        for n, p, t in raw
    ]


def format_profile(profiles: list[StencilProfile]) -> str:
    """Fixed-width report, hottest stencil first."""
    rows = [
        [p.name, p.points, p.seconds, p.stencils_per_s / 1e6, f"{p.share:.1%}"]
        for p in sorted(profiles, key=lambda p: -p.seconds)
    ]
    return format_table(
        ["stencil", "points", "seconds", "Mstencil/s", "share"],
        rows,
        title="per-stencil profile (hottest first)",
    )
