"""The ``schedule_for`` memo: LRU recency and build-once concurrency."""

import threading
import time

import pytest

from repro.schedule import ScheduleOptions, schedule_for
from repro.schedule import lower
from tests.schedule._cases import laplacian_pair


@pytest.fixture
def counted_builds(monkeypatch):
    """Fresh memo + a counter on the underlying build_schedule."""
    monkeypatch.setattr(lower, "_CACHE", type(lower._CACHE)())
    monkeypatch.setattr(lower, "_BUILDING", {})
    calls = []
    real = lower.build_schedule

    def counting(group, shapes, options=None):
        calls.append(options)
        time.sleep(0.02)  # widen the race window
        return real(group, shapes, options)

    monkeypatch.setattr(lower, "build_schedule", counting)
    return calls


class TestLRU:
    def test_hit_refreshes_recency(self, counted_builds, monkeypatch):
        monkeypatch.setattr(lower, "_CACHE_CAP", 3)
        group, shapes = laplacian_pair()
        opts = [ScheduleOptions(tile=t) for t in (2, 3, 4, 5)]
        for o in opts[:3]:
            schedule_for(group, shapes, o)  # fill to cap: [2, 3, 4]
        schedule_for(group, shapes, opts[0])  # touch 2 -> [3, 4, 2]
        schedule_for(group, shapes, opts[3])  # insert 5, evict 3
        assert len(counted_builds) == 4
        schedule_for(group, shapes, opts[0])  # still memoized
        assert len(counted_builds) == 4
        schedule_for(group, shapes, opts[1])  # 3 was evicted: rebuild
        assert len(counted_builds) == 5

    def test_fifo_would_have_evicted_the_hot_entry(
        self, counted_builds, monkeypatch
    ):
        # The regression the LRU fix pins: under FIFO the oldest-inserted
        # entry dies even while hot.
        monkeypatch.setattr(lower, "_CACHE_CAP", 2)
        group, shapes = laplacian_pair()
        hot = ScheduleOptions(tile=2)
        schedule_for(group, shapes, hot)
        for t in (3, 4, 5):
            schedule_for(group, shapes, hot)  # keep it hot
            schedule_for(group, shapes, ScheduleOptions(tile=t))
        n = len(counted_builds)
        schedule_for(group, shapes, hot)
        assert len(counted_builds) == n  # survived every eviction round


class TestBuildOnce:
    def test_concurrent_misses_build_once(self, counted_builds):
        group, shapes = laplacian_pair()
        opts = ScheduleOptions(tile=8)
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(schedule_for(group, shapes, opts))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(counted_builds) == 1
        assert all(r is results[0] for r in results)

    def test_distinct_keys_each_build_once(self, counted_builds):
        group, shapes = laplacian_pair()
        all_opts = [ScheduleOptions(tile=t) for t in (2, 4)] * 4
        barrier = threading.Barrier(len(all_opts))

        def worker(o):
            barrier.wait()
            schedule_for(group, shapes, o)

        threads = [
            threading.Thread(target=worker, args=(o,)) for o in all_opts
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(counted_builds) == 2
