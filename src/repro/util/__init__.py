"""Shared utilities: timing, table formatting, deterministic RNG."""

from .timing import Timer, best_of, clock_resolution, time_callable
from .tables import format_table

__all__ = [
    "Timer",
    "best_of",
    "clock_resolution",
    "time_callable",
    "format_table",
]
