"""Hand-optimized comparators (the paper's HPGMG/HPGMG-CUDA role)."""

from .kernels_c import BASELINE_C_SOURCE, BaselineKernels3D
from .mg_c import BaselineMultigrid3D

__all__ = ["BASELINE_C_SOURCE", "BaselineKernels3D", "BaselineMultigrid3D"]
