"""Pytest fixtures for the whole suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)  # IPDPSW 2017
