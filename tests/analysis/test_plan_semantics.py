"""Executable validation of the scheduler's core guarantee.

The greedy plan claims stencils sharing a phase may run in *any* order
(a backend runs them as concurrent tasks).  These tests execute random
groups under random within-phase permutations and compare against the
program order — if the dependence analysis ever under-reports an
ordering constraint, this suite finds the permutation that exposes it.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dag import plan
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import SparseArray
from repro.hpgmg.operators import cc_laplacian, smooth_group, vc_laplacian

SHAPE = (14, 14)


def run_in_order(group: StencilGroup, order, arrays):
    """Execute the stencils of ``group`` in an explicit total order."""
    work = {k: np.array(v, copy=True) for k, v in arrays.items()}
    for i in order:
        sub = StencilGroup([group[i]])
        sub.compile(backend="numpy")(**{g: work[g] for g in sub.grids()})
    return work


def phase_respecting_orders(phases, rng, samples=3):
    """A few random total orders that permute only within phases."""
    orders = []
    for _ in range(samples):
        order = []
        for ph in phases:
            ph = list(ph)
            rng.shuffle(ph)
            order.extend(ph)
        orders.append(order)
    return orders


GRID_NAMES = ("a", "b", "u")


@st.composite
def random_groups(draw):
    n = draw(st.integers(2, 5))
    stencils = []
    for i in range(n):
        offs = draw(
            st.lists(
                st.tuples(st.integers(-1, 1), st.integers(-1, 1)),
                min_size=1, max_size=3, unique=True,
            )
        )
        src = draw(st.sampled_from(GRID_NAMES))
        dst = draw(st.sampled_from(GRID_NAMES))
        start = draw(st.tuples(st.integers(1, 3), st.integers(1, 3)))
        stride = draw(st.sampled_from([(1, 1), (2, 2), (2, 1)]))
        body = Component(src, SparseArray({o: 0.5 for o in offs}))
        stencils.append(
            Stencil(body, dst, RectDomain(start, (-1, -1), stride),
                    name=f"s{i}")
        )
    return StencilGroup(stencils)


class TestPhasePermutationSafety:
    @settings(max_examples=40, deadline=None)
    @given(group=random_groups(), seed=st.integers(0, 999))
    def test_within_phase_permutations_preserve_results(self, group, seed):
        rng = np.random.default_rng(seed)
        shapes = {g: SHAPE for g in group.grids()}
        exec_plan = plan(group, shapes)
        arrays = {g: rng.random(SHAPE) for g in group.grids()}
        ref = run_in_order(group, range(len(group)), arrays)
        pyrng = np.random.default_rng(seed + 1)
        for order in phase_respecting_orders(exec_plan.phases, pyrng):
            got = run_in_order(group, order, arrays)
            for g in ref:
                np.testing.assert_allclose(
                    got[g], ref[g], atol=1e-13,
                    err_msg=f"phase-respecting order {order} changed {g}",
                )

    def test_smoother_phases_fully_permutable(self, rng):
        group = smooth_group(2, vc_laplacian(2, 1 / 12), lam="lam")
        shapes = {g: SHAPE for g in group.grids()}
        exec_plan = plan(group, shapes)
        arrays = {g: rng.random(SHAPE) for g in group.grids()}
        arrays["lam"] = 0.01 * np.ones(SHAPE)
        ref = run_in_order(group, range(len(group)), arrays)
        # exhaustively permute the 4-stencil boundary phase
        bc_phase = list(exec_plan.phases[0])
        rest = [i for ph in exec_plan.phases[1:] for i in ph]
        for perm in itertools.permutations(bc_phase):
            got = run_in_order(group, list(perm) + rest, arrays)
            np.testing.assert_allclose(got["x"], ref["x"], atol=1e-13)

    def test_wavefront_schedule_also_safe(self, rng):
        # ASAP reordering crosses program order; results must still match
        group = smooth_group(2, cc_laplacian(2, 1 / 12), lam=0.01)
        shapes = {g: SHAPE for g in group.grids()}
        exec_plan = plan(group, shapes, policy="wavefront")
        arrays = {g: rng.random(SHAPE) for g in group.grids()}
        ref = run_in_order(group, range(len(group)), arrays)
        order = [i for ph in exec_plan.phases for i in ph]
        got = run_in_order(group, order, arrays)
        np.testing.assert_allclose(got["x"], ref["x"], atol=1e-13)

    def test_violating_a_barrier_changes_results(self, rng):
        # sanity for the test harness itself: moving a dependent stencil
        # across its barrier is *observable*.
        lap = Component("a", SparseArray({(0, 1): 1.0, (1, 0): 1.0}))
        s1 = Stencil(Component("u", SparseArray({(0, 0): 2.0})), "a",
                     RectDomain((1, 1), (-1, -1)), name="w")
        s2 = Stencil(lap, "b", RectDomain((1, 1), (-2, -2)), name="r")
        group = StencilGroup([s1, s2])
        arrays = {g: rng.random(SHAPE) for g in group.grids()}
        ref = run_in_order(group, [0, 1], arrays)
        swapped = run_in_order(group, [1, 0], arrays)
        assert not np.allclose(swapped["b"], ref["b"])
