"""Stencil fusion in the compiled backends."""

import numpy as np
import pytest

from repro.backends.c_backend import fusion_chains, generate_c_source
from repro.backends.openmp_backend import generate_openmp_source
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
BLUR = Component("u", WeightArray([[0, 0.25, 0], [0.25, 0, 0.25], [0, 0.25, 0]]))


def indep_group(n=3):
    return StencilGroup(
        [Stencil(LAP, f"out{i}", INTERIOR, name=f"s{i}") for i in range(n)]
    )


def shapes_of(g, shape=(16, 16)):
    return {k: shape for k in g.grids()}


class TestFusionChains:
    def test_independent_run_fuses(self):
        g = indep_group(3)
        assert fusion_chains(g, shapes_of(g)) == [[0, 1, 2]]

    def test_raw_breaks_chain(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
                     "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        assert fusion_chains(g, shapes_of(g)) == [[0], [1]]

    def test_transitive_conflict_breaks_chain(self):
        # s0 writes a; s1 independent; s2 reads a with an offset: fusing
        # all three would let s2 observe half-updated a.
        s0 = Stencil(LAP, "a", INTERIOR, name="s0")
        s1 = Stencil(BLUR, "b", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
                     "c", INTERIOR, name="s2")
        g = StencilGroup([s0, s1, s2])
        chains = fusion_chains(g, shapes_of(g))
        assert [0, 1] in chains and [2] in chains

    def test_different_domains_break_chain(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(BLUR, "b", RectDomain((2, 2), (-2, -2)), name="s2")
        g = StencilGroup([s1, s2])
        assert fusion_chains(g, shapes_of(g)) == [[0], [1]]

    def test_snapshot_stencils_never_fuse(self):
        hazard = Stencil(BLUR, "u", INTERIOR, name="hazard")
        other = Stencil(LAP, "b", INTERIOR, name="other")
        g = StencilGroup([hazard, other])
        assert fusion_chains(g, shapes_of(g)) == [[0], [1]]


class TestFusedCodegen:
    def test_one_loop_nest_for_fused_pair(self):
        g = indep_group(2)
        shapes = shapes_of(g)
        fused = generate_c_source(g, shapes, np.float64, fuse=True)
        unfused = generate_c_source(g, shapes, np.float64, fuse=False)
        assert fused.count("for (int64_t i0") == 1
        assert unfused.count("for (int64_t i0") == 2

    def test_openmp_fused_emits_fewer_nests(self):
        g = indep_group(2)
        shapes = shapes_of(g)
        fused = generate_openmp_source(g, shapes, np.float64, fuse=True)
        unfused = generate_openmp_source(g, shapes, np.float64, fuse=False)
        assert fused.count("/* stencil") < unfused.count("/* stencil")

    @pytest.mark.parametrize("backend", ["c", "openmp"])
    def test_fusion_preserves_results(self, backend, rng):
        body2 = Component("u", WeightArray([[1, 0, 0], [0, 0, 0], [0, 0, 2]]))
        g = StencilGroup(
            [
                Stencil(LAP, "a", INTERIOR, name="s1"),
                Stencil(BLUR, "b", INTERIOR, name="s2"),
                Stencil(body2, "c", INTERIOR, name="s3"),
            ]
        )
        u = rng.random((18, 18))
        ref = {"u": u.copy(), "a": np.zeros((18, 18)),
               "b": np.zeros((18, 18)), "c": np.zeros((18, 18))}
        g.compile(backend="python")(**ref)
        got = {k: (u.copy() if k == "u" else np.zeros((18, 18))) for k in ref}
        g.compile(backend=backend, fuse=True)(**got)
        for k in ref:
            np.testing.assert_allclose(got[k], ref[k], atol=1e-14)

    def test_fusion_with_colored_domains(self, rng):
        # two independent outputs over the same red coloring fuse into
        # one parity nest
        from repro.hpgmg.operators import red_black_domains

        red, _ = red_black_domains(2)
        g = StencilGroup(
            [
                Stencil(LAP, "a", red, name="s1"),
                Stencil(BLUR, "b", red, name="s2"),
            ]
        )
        shapes = shapes_of(g)
        src = generate_c_source(g, shapes, np.float64, fuse=True)
        assert src.count("for (int64_t i0") == 1  # fused AND parity-fused
        u = rng.random((16, 16))
        ref = {"u": u.copy(), "a": np.zeros((16, 16)), "b": np.zeros((16, 16))}
        g.compile(backend="python")(**ref)
        got = {"u": u.copy(), "a": np.zeros((16, 16)), "b": np.zeros((16, 16))}
        g.compile(backend="c", fuse=True)(**got)
        np.testing.assert_allclose(got["a"], ref["a"])
        np.testing.assert_allclose(got["b"], ref["b"])
