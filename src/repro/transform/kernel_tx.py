"""Kernel transforms: the pass pipeline as composable rewrite objects.

Each transform wraps one pass from :mod:`repro.kernel.optimize` (fold →
CSE → hoist → FMA) and records what it did in ``self.tally`` so
:func:`repro.kernel.optimize.optimize_kernel` — now a thin driver over
:func:`kernel_pipeline` — can assemble the same
:class:`~repro.kernel.optimize.OptReport` it always produced.  All four
passes are bitwise semantics preserving on IEEE doubles (see the
:mod:`~repro.kernel.optimize` module docstring), so any composition of
them is too.
"""

from __future__ import annotations

from ..kernel.ir import KernelBody, KExpr
from ..kernel.optimize import _cse, _hoist, fold_constants, group_fma
from .base import Pipeline, Transform

__all__ = [
    "FoldConstants",
    "Cse",
    "Hoist",
    "FmaGroup",
    "kernel_pipeline",
    "hoist",
    "fma_group",
    "cse",
    "fold",
]


class FoldConstants(Transform):
    """Evaluate pure-constant subtrees; strip exact ``*1.0`` identities."""

    name = "fold_constants"

    def __init__(self) -> None:
        self.tally: dict[str, int] = {}

    def apply_kernel(self, body: KernelBody) -> KernelBody:
        folded = [0]

        def go(e: KExpr) -> KExpr:
            out, k = fold_constants(e)
            folded[0] += k
            return out

        out = body.map_exprs(go)
        self.tally = {"consts_folded": folded[0]}
        return out


class Cse(Transform):
    """Bind every subexpression occurring twice or more to a let."""

    name = "cse"

    def __init__(self) -> None:
        self.tally: dict[str, int] = {}

    def apply_kernel(self, body: KernelBody) -> KernelBody:
        out, deduped, bound = _cse(body)
        self.tally = {"reads_deduped": deduped, "cse_bound": bound}
        return out


class Hoist(Transform):
    """Extract load-free subtrees into the depth-0 scalar prelude."""

    name = "hoist"

    def __init__(self) -> None:
        self.tally: dict[str, int] = {}

    def apply_kernel(self, body: KernelBody) -> KernelBody:
        out = _hoist(body)
        # FMA grouping never adds or removes lets, so this count equals
        # the final body's scalar-prelude size (what OptReport records).
        self.tally = {"bindings_hoisted": len(out.scalar_lets())}
        return out


class FmaGroup(Transform):
    """Rewrite ``x + a*b`` into structural (separately rounded) FMAs."""

    name = "fma_group"

    def __init__(self) -> None:
        self.tally: dict[str, int] = {}

    def apply_kernel(self, body: KernelBody) -> KernelBody:
        fmas = [0]

        def go(e: KExpr) -> KExpr:
            out, k = group_fma(e)
            fmas[0] += k
            return out

        out = body.map_exprs(go)
        self.tally = {"fma_grouped": fmas[0]}
        return out


def kernel_pipeline() -> Pipeline:
    """The canonical pass sequence ``optimize_kernel`` runs, as transforms.

    Fresh instances every call — the transforms are stateful (each
    records its ``tally``), so pipelines must not be shared between
    optimizations.
    """
    return Pipeline((FoldConstants(), Cse(), Hoist(), FmaGroup()))


# factories, matching the schedule-transform spelling


def fold() -> FoldConstants:
    return FoldConstants()


def cse() -> Cse:
    return Cse()


def hoist() -> Hoist:
    return Hoist()


def fma_group() -> FmaGroup:
    return FmaGroup()
