"""Expression IR: construction, algebra, immutability, traversal."""

import pytest

from repro.core.expr import (
    BinOp,
    Constant,
    Expr,
    GridRead,
    Neg,
    Param,
    as_expr,
    grids_read,
    params_used,
    walk,
)


class TestConstant:
    def test_value_coerced_to_float(self):
        assert Constant(3).value == 3.0
        assert isinstance(Constant(3).value, float)

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            Constant("3")

    def test_equality_and_hash(self):
        assert Constant(1.5) == Constant(1.5)
        assert hash(Constant(1.5)) == hash(Constant(1.5))
        assert Constant(1.5) != Constant(2.5)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Constant(1.0).value = 2.0


class TestParam:
    def test_requires_identifier(self):
        with pytest.raises(ValueError):
            Param("not an identifier")

    def test_signature(self):
        assert Param("lam").signature() == "param:lam"

    def test_equality(self):
        assert Param("w") == Param("w")
        assert Param("w") != Param("v")


class TestGridRead:
    def test_default_scale_is_ones(self):
        r = GridRead("u", (1, -1))
        assert r.scale == (1, 1)
        assert r.offset == (1, -1)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            GridRead("u", (0,), scale=(0,))
        with pytest.raises(ValueError):
            GridRead("u", (0,), scale=(-2,))

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            GridRead("u", (0, 0), scale=(2,))

    def test_rejects_empty_grid_name(self):
        with pytest.raises(TypeError):
            GridRead("", (0,))

    def test_compose_identity(self):
        r = GridRead("u", (1, 2))
        c = r.compose((1, 1), (0, 0))
        assert c == r

    def test_compose_shift(self):
        # evaluate u[i + (1,2)] at the point i + (3,4): u[i + (4,6)]
        r = GridRead("u", (1, 2))
        c = r.compose((1, 1), (3, 4))
        assert c.offset == (4, 6)
        assert c.scale == (1, 1)

    def test_compose_scale(self):
        # u[2i + 1] evaluated at 2j + 1  ->  u[4j + 3]
        r = GridRead("u", (1,), scale=(2,))
        c = r.compose((2,), (1,))
        assert c.scale == (4,)
        assert c.offset == (3,)

    def test_signature_unit_scale_is_short(self):
        assert GridRead("u", (1, 0)).signature() == "u@[1, 0]"

    def test_signature_with_scale(self):
        assert "2" in GridRead("u", (0,), scale=(2,)).signature()


class TestOperators:
    def test_add_builds_binop(self):
        e = Constant(1) + Constant(2)
        assert isinstance(e, BinOp) and e.op == "+"

    def test_number_coercion_both_sides(self):
        left = 2 + Param("a")
        right = Param("a") + 2
        assert isinstance(left, BinOp) and isinstance(right, BinOp)
        assert isinstance(left.lhs, Constant)
        assert isinstance(right.rhs, Constant)

    def test_sub_mul_div_neg(self):
        a, b = Param("a"), Param("b")
        assert (a - b).op == "-"
        assert (a * b).op == "*"
        assert (a / b).op == "/"
        assert isinstance(-a, Neg)
        assert +a is a

    def test_rsub_rdiv(self):
        a = Param("a")
        e = 1 - a
        assert e.op == "-" and isinstance(e.lhs, Constant)
        e = 1 / a
        assert e.op == "/" and isinstance(e.lhs, Constant)

    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("%", Constant(1), Constant(2))

    def test_binop_rejects_raw_values(self):
        with pytest.raises(TypeError):
            BinOp("+", 1, Constant(2))


class TestTraversal:
    def _expr(self):
        return (GridRead("u", (0, 1)) + GridRead("v", (1, 0))) * Param("w") - 3

    def test_walk_visits_all_nodes(self):
        kinds = [type(n).__name__ for n in walk(self._expr())]
        assert "GridRead" in kinds and "Param" in kinds and "Constant" in kinds

    def test_grids_read(self):
        assert grids_read(self._expr()) == {"u", "v"}

    def test_params_used(self):
        assert params_used(self._expr()) == {"w"}

    def test_grids_read_finds_nested_component_weights(self):
        from repro.core.components import Component
        from repro.core.weights import SparseArray

        beta = Component("beta", SparseArray({(0,): 1.0}))
        outer = Component("x", SparseArray({(0,): beta, (1,): 2.0}))
        assert grids_read(outer) == {"x", "beta"}


class TestAsExpr:
    def test_passthrough(self):
        e = Param("p")
        assert as_expr(e) is e

    def test_numbers(self):
        assert as_expr(2.5) == Constant(2.5)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_expr("u")
