"""The pass pipeline: folding, CSE, hoisting, FMA grouping, OptReport."""

from repro.bench import paper_operators
from repro.core.domains import RectDomain
from repro.core.expr import GridRead, Param
from repro.core.stencil import Stencil
from repro.kernel.ir import (
    KAdd,
    KConst,
    KDiv,
    KFma,
    KLoad,
    KMul,
    KParam,
    KRef,
    walk,
)
from repro.kernel.lower import body_for, lower_flat
from repro.kernel.optimize import fold_constants, group_fma, optimize_kernel

DOM = RectDomain((1, 1), (-1, -1))


def _load(grid="u", offset=(0, 0)):
    return KLoad(grid, offset, (1, 1))


# -- constant folding ---------------------------------------------------------


def test_fold_pure_constants():
    e, n = fold_constants(KMul(KConst(2.0), KConst(3.0)))
    assert e == KConst(6.0) and n == 1


def test_fold_one_identities():
    e, n = fold_constants(KMul(KConst(1.0), _load()))
    assert e == _load() and n == 1
    e, n = fold_constants(KMul(_load(), KConst(1.0)))
    assert e == _load() and n == 1
    e, n = fold_constants(KDiv(_load(), KConst(1.0)))
    assert e == _load() and n == 1


def test_fold_never_rewrites_zero():
    # 0*x -> 0 and x+0.0 -> x change IEEE semantics (signed zeros, NaN)
    z_mul = KMul(KConst(0.0), _load())
    e, n = fold_constants(z_mul)
    assert e == z_mul and n == 0
    z_add = KAdd(_load(), KConst(0.0))
    e, n = fold_constants(z_add)
    assert e == z_add and n == 0


# -- CSE ----------------------------------------------------------------------


def test_cse_names_repeated_reads():
    s = Stencil(
        GridRead("u", (1, 0)) * Param("w") + GridRead("u", (1, 0)),
        "out",
        DOM,
    )
    body, report = body_for(s, optimize=True)
    assert report.reads_deduped >= 1
    assert report.cse_bound >= 1
    # the repeated load appears exactly once in the optimized body
    occurrences = sum(
        1
        for e in body.exprs()
        for n in walk(e)
        if isinstance(n, KLoad) and n.offset == (1, 0)
    )
    assert occurrences == 1


def test_cse_reduces_vc_gsrb_loads():
    """Acceptance: the variable-coefficient GSRB kernel deduplicates."""
    st = paper_operators(8)["vc_gsrb"]
    raw, _ = body_for(st, optimize=False)
    opt, report = body_for(st, optimize=True)
    assert report.reads_deduped > 0
    assert opt.load_count() < raw.load_count()


# -- hoisting -----------------------------------------------------------------


def test_param_products_are_hoisted_to_depth_zero():
    s = Stencil(
        GridRead("u", (0, 0)) * (Param("w") * Param("w")), "out", DOM
    )
    body, report = body_for(s, optimize=True)
    assert report.bindings_hoisted >= 1
    scalars = body.scalar_lets()
    assert scalars, "expected a loop-invariant scalar binding"
    for let in scalars:
        assert all(
            not isinstance(n, KLoad) for n in walk(let.expr)
        ), "hoisted binding must be load-free"


def test_hoisting_never_moves_loads():
    st = paper_operators(8)["cc_jacobi"]
    body, _ = body_for(st, optimize=True)
    for let in body.scalar_lets():
        assert all(not isinstance(n, KLoad) for n in walk(let.expr))


# -- FMA grouping -------------------------------------------------------------


def test_group_fma_structural():
    e = KAdd(KParam("a"), KMul(KParam("b"), KParam("c")))
    out, n = group_fma(e)
    assert n == 1
    assert out == KFma(KParam("b"), KParam("c"), KParam("a"))


def test_group_fma_prefers_rhs_multiply():
    e = KAdd(KMul(KParam("a"), KParam("b")), KMul(KParam("c"), KParam("d")))
    out, n = group_fma(e)
    assert n == 1
    assert isinstance(out, KFma)
    # rhs multiply becomes the product; lhs stays the addend
    assert out.a == KParam("c") and out.b == KParam("d")


# -- the pipeline and its report ---------------------------------------------


def test_optimize_kernel_report_is_consistent():
    st = paper_operators(8)["cc_jacobi"]
    raw, _ = body_for(st, optimize=False)
    body, report = optimize_kernel(raw)
    assert report.nodes_before == raw.node_count()
    assert report.nodes_after == body.node_count()
    assert report.nodes_after <= report.nodes_before
    d = report.to_dict()
    assert set(d) == {
        "nodes_before",
        "nodes_after",
        "consts_folded",
        "reads_deduped",
        "cse_bound",
        "bindings_hoisted",
        "fma_grouped",
    }
    assert isinstance(report.summary(), str) and report.summary()


def test_optimized_body_keeps_reference_integrity():
    """Every KRef in the optimized body resolves to an earlier binding
    (KernelBody.__init__ would raise otherwise — construct explicitly)."""
    for st in paper_operators(8).values():
        body, _ = body_for(st, optimize=True)
        names = set()
        for let in body.lets:
            for n in walk(let.expr):
                if isinstance(n, KRef):
                    assert n.name in names
            names.add(let.name)
        for n in walk(body.result):
            if isinstance(n, KRef):
                assert n.name in names
