"""Shared utilities: timing, table formatting, deterministic RNG."""

from .timing import Timer, best_of, time_callable
from .tables import format_table

__all__ = ["Timer", "best_of", "time_callable", "format_table"]
